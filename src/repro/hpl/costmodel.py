"""Flop accounting for the HPL kernels.

The paper's HPL numbers come from Fortran loop nests compiled at -O3
(no vendor BLAS), so per-backend effective rates are far below peak;
the backend efficiency knob lives in
:data:`repro.calibration.BACKEND_EFFICIENCY` and is applied by
``ctx.compute_cost``.  This module only counts flops, so verification
mode and model mode charge identical time for identical work.
"""

from __future__ import annotations

__all__ = [
    "getrf_flops",
    "trsm_flops",
    "gemm_flops",
    "scale_flops",
    "rank1_update_flops",
    "hpl_total_flops",
]


def getrf_flops(m: int, n: int) -> float:
    """LU factorization of an m×n panel (excluding pivot search):
    the classic mn² − n³/3 count."""
    m, n = float(m), float(n)
    return m * n * n - n * n * n / 3.0


def trsm_flops(m: int, n: int) -> float:
    """Triangular solve with an m×m triangle against n right-hand sides."""
    return float(m) * float(m) * float(n)


def gemm_flops(m: int, n: int, k: int) -> float:
    """C ← C − A·B with A m×k, B k×n."""
    return 2.0 * float(m) * float(n) * float(k)


def scale_flops(m: int) -> float:
    """Scale a column of length m by a pivot reciprocal."""
    return float(m)


def rank1_update_flops(m: int, n: int) -> float:
    """Rank-1 update of an m×n trailing panel region."""
    return 2.0 * float(m) * float(n)


def hpl_total_flops(n: int) -> float:
    """The HPL GFLOP/s denominator: 2n³/3 + 3n²/2 (factor + solve)."""
    n = float(n)
    return 2.0 * n**3 / 3.0 + 1.5 * n * n
