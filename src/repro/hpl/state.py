"""Shared per-image state of one HPL run.

Two execution modes share the same communication skeleton:

* ``verify=True`` — blocks hold real NumPy data, the factorization does
  real arithmetic, and the driver can reconstruct ‖A − L·U‖/‖A‖ at the
  end.  The test matrix is made strongly diagonally dominant so the
  factorization is stable **without row pivoting** (see DESIGN.md: the
  pivot search and swap *traffic* is still modeled, but the swaps are
  identity — a substitution that keeps the communication pattern of HPL
  while keeping the distributed numerics tractable).
* ``verify=False`` — the model mode used for Figure 1: payloads carry
  only sizes, compute is charged through the flop model, and N can be
  large without moving real gigabytes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..teams.team import TeamView
from .grid import BlockCyclicGrid

__all__ = ["SizedPayload", "BlockBundle", "HplState", "make_block"]


class SizedPayload:
    """A stand-in payload exposing only ``nbytes`` — what model-mode
    broadcasts send so the conduit charges honest wire time without any
    real data moving."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SizedPayload({self.nbytes})"


class BlockBundle(dict):
    """A dict of ``{block_row_or_col: ndarray}`` that reports its true
    payload size, so verify-mode broadcasts charge the same wire bytes
    as model-mode :class:`SizedPayload` ones — keeping timed results
    identical across the two modes (a tested invariant)."""

    @property
    def nbytes(self) -> int:
        return int(sum(v.nbytes for v in self.values()))


def make_block(n: int, nb: int, bi: int, bj: int, seed: int = 1234) -> np.ndarray:
    """Deterministic NB×NB block of the test matrix.

    Off-diagonal entries are uniform in [−0.5, 0.5); diagonal blocks add
    ``n`` on the diagonal, making A strongly diagonally dominant so
    unpivoted LU is stable.  Depends only on (n, nb, bi, bj, seed), so
    any image — and the verifier — can regenerate any block.
    """
    rng = np.random.default_rng((seed, bi, bj))
    block = rng.random((nb, nb)) - 0.5
    if bi == bj:
        block[np.diag_indices(nb)] += float(n)
    return block


class HplState:
    """Everything one image carries through the factorization."""

    def __init__(
        self,
        grid: BlockCyclicGrid,
        row_team: TeamView,
        col_team: TeamView,
        verify: bool,
        seed: int = 1234,
    ):
        self.grid = grid
        self.row_team = row_team
        self.col_team = col_team
        self.verify = verify
        self.seed = seed
        #: my owned blocks; real arrays in verify mode, None in model mode
        self.blocks: Dict[Tuple[int, int], Optional[np.ndarray]] = {}
        #: L panel blocks received via the row-team broadcast this step
        self.panel: Dict[int, Any] = {}
        #: U row blocks received via the column-team broadcast this step
        self.urow: Dict[int, Any] = {}
        if verify:
            for bi, bj in grid.my_blocks():
                self.blocks[(bi, bj)] = make_block(grid.n, grid.nb, bi, bj, seed)
        else:
            for bi, bj in grid.my_blocks():
                self.blocks[(bi, bj)] = None

    @property
    def nb(self) -> int:
        return self.grid.nb

    def block(self, bi: int, bj: int) -> np.ndarray:
        arr = self.blocks[(bi, bj)]
        assert arr is not None, "block data requested in model mode"
        return arr

    # Indices of the special members inside my row/column teams.  Row
    # teams are formed of a full grid row ordered by grid column (the
    # formation orders by parent index, and parent indices within a grid
    # row increase with the column), so the member at grid column c has
    # team index c+1; symmetrically for column teams.
    def row_team_index_of_col(self, grid_col: int) -> int:
        return grid_col + 1

    def col_team_index_of_row(self, grid_row: int) -> int:
        return grid_row + 1
