"""CAF port of the High-Performance Linpack benchmark (paper §V-B).

Block-cyclic right-looking LU over a P×Q image grid using row and
column teams, with a verification mode (real NumPy arithmetic on a
diagonally dominant test matrix, residual-checked) and a model mode
(flop/traffic costing for Figure 1 at scale).
"""

from .costmodel import gemm_flops, getrf_flops, hpl_total_flops, trsm_flops
from .driver import HplReport, hpl_main, run_hpl
from .grid import BlockCyclicGrid, grid_shape
from .solve import backward_substitute, forward_substitute, solve
from .state import HplState, make_block

__all__ = [
    "run_hpl",
    "hpl_main",
    "HplReport",
    "BlockCyclicGrid",
    "grid_shape",
    "HplState",
    "solve",
    "forward_substitute",
    "backward_substitute",
    "make_block",
    "gemm_flops",
    "getrf_flops",
    "trsm_flops",
    "hpl_total_flops",
]
