"""HPL trailing-matrix update (the row/column broadcast half of a step).

After the panel of step ``k`` is factored:

1. **Panel broadcast** along every row team: the member in the panel's
   grid column sends its column-``k`` blocks (packed diagonal included)
   to its whole grid row — in verify mode as a dict of real blocks, in
   model mode as one sized payload.  This is where the paper's two-level
   broadcast earns its keep: with block image placement a grid row is
   largely node-local.
2. **U-row computation**: images in the panel's grid row solve
   ``U(k, bj) = L11⁻¹ · A(k, bj)`` for their trailing block columns.
3. **U broadcast** down every column team.
4. **DGEMM**: every image updates its trailing blocks
   ``A(bi, bj) −= L(bi, k) · U(k, bj)``.

Every team's members enter every broadcast (with possibly empty
payloads), so control flow never diverges within a team — the SPMD
discipline the collectives require.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from .costmodel import gemm_flops, trsm_flops
from .panel import unpack_lu
from .state import BlockBundle, HplState, SizedPayload

__all__ = ["broadcast_panel", "update_trailing"]


def broadcast_panel(ctx, state: HplState, k: int) -> Iterator:
    """Phases 1–3: panel row-broadcast, U computation, U column-broadcast."""
    grid = state.grid
    nb = grid.nb
    panel_col = k % grid.q
    panel_row = k % grid.p

    # ---- 1. L panel along my row team -----------------------------------
    source = state.row_team_index_of_col(panel_col)
    if grid.my_col == panel_col:
        owned = grid.my_blocks_in_col(k, from_bi=k)
        if state.verify:
            payload: object = BlockBundle(
                (bi, state.block(bi, k).copy()) for bi in owned
            )
        else:
            payload = SizedPayload(len(owned) * nb * nb * 8)
    else:
        payload = None
    if state.row_team.size > 1:
        payload = yield from ctx.co_broadcast(
            payload, source_image=source, team=state.row_team
        )
    if state.verify:
        state.panel = dict(payload)  # {bi: block}; bi == k is packed L\U
    else:
        state.panel = {}

    # ---- 2. U row: triangular solves on my trailing row-k blocks --------
    my_u_cols = grid.my_blocks_in_row(k, from_bj=k + 1) if grid.my_row == panel_row else []
    if my_u_cols:
        yield ctx.compute_cost(trsm_flops(nb, len(my_u_cols) * nb))
    if state.verify:
        state.urow = {}
        if my_u_cols:
            lower, _ = unpack_lu(state.panel[k])
            for bj in my_u_cols:
                blk = state.block(k, bj)
                blk[...] = np.linalg.solve(lower, blk)
                state.urow[bj] = blk.copy()
    else:
        state.urow = {}

    # ---- 3. U blocks down my column team ---------------------------------
    u_source = state.col_team_index_of_row(panel_row)
    if grid.my_row == panel_row:
        if state.verify:
            u_payload: object = BlockBundle(state.urow)
        else:
            count = len(grid.my_blocks_in_row(k, from_bj=k + 1))
            u_payload = SizedPayload(count * nb * nb * 8)
    else:
        u_payload = None
    if state.col_team.size > 1:
        u_payload = yield from ctx.co_broadcast(
            u_payload, source_image=u_source, team=state.col_team
        )
    if state.verify:
        state.urow = dict(u_payload)


def update_trailing(ctx, state: HplState, k: int) -> Iterator:
    """Phase 4: DGEMM on my trailing blocks (aggregated into one compute
    charge in model mode; real matmuls in verify mode)."""
    grid = state.grid
    nb = grid.nb
    trailing = list(grid.trailing_blocks(k))
    if not trailing:
        return
    yield ctx.compute_cost(len(trailing) * gemm_flops(nb, nb, nb))
    if state.verify:
        for bi, bj in trailing:
            state.block(bi, bj)[...] -= state.panel[bi] @ state.urow[bj]


def reconstruct_lu(blocks: Dict, n: int, nb: int) -> tuple[np.ndarray, np.ndarray]:
    """Assemble global L (unit lower) and U from a full map of factored
    blocks {(bi, bj): array} — verification helper used by the driver
    after gathering everything at image 1."""
    lower = np.zeros((n, n))
    upper = np.zeros((n, n))
    nblocks = n // nb
    for bi in range(nblocks):
        for bj in range(nblocks):
            blk = blocks[(bi, bj)]
            rows = slice(bi * nb, (bi + 1) * nb)
            cols = slice(bj * nb, (bj + 1) * nb)
            if bi > bj:
                lower[rows, cols] = blk
            elif bi < bj:
                upper[rows, cols] = blk
            else:
                l_blk, u_blk = unpack_lu(blk)
                lower[rows, cols] = l_blk
                upper[rows, cols] = u_blk
    return lower, upper
