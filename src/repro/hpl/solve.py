"""Distributed triangular solves: the back half of "solving Ax = b".

After the factorization leaves L (unit lower) and U packed in the
block-cyclic blocks, HPL finishes with two triangular solves.  The
right-hand side is distributed by block row: segment k (NB elements)
lives with the owner of diagonal block (k, k).

Forward substitution (L·y = b), block row k = 0 … K−1:

1. the diagonal owner solves ``y_k = L_kk⁻¹ (b_k − acc_k)`` where
   ``acc_k`` accumulates contributions deposited by earlier rows;
2. ``y_k`` is broadcast down block column k's *column team* (the owners
   of blocks (i, k), i > k, all live in that team);
3. each such owner computes ``L_ik · y_k`` and deposits it with the
   owner of diagonal block (i, i) — a one-sided put into a tagged
   mailbox, the CAF idiom for irregular reductions.

Backward substitution (U·x = y) is the mirror image, bottom-up.  Both
phases run on every image (SPMD); images without work in a step send
and receive nothing but stay in lockstep through the mailbox tags.

Cost accounting matches the kernels: ``trsm`` on the diagonal,
``gemv``-style block products off it, plus the broadcast/deposit
traffic — all through the active runtime config, so the solve exercises
the same team machinery the factorization does.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from ..collectives.reduce import _send_value, _wait_values
from .costmodel import gemm_flops, trsm_flops
from .panel import unpack_lu
from .state import HplState, SizedPayload

__all__ = ["forward_substitute", "backward_substitute", "solve"]


def _deposit_count(grid, k: int, direction: str) -> int:
    """How many off-diagonal contributions block row ``k`` receives:
    one per factored block in its row strictly left (forward) or right
    (backward) of the diagonal."""
    if direction == "forward":
        return k
    return grid.nblocks - 1 - k


def forward_substitute(ctx, state: HplState,
                       b_segments: Optional[Dict[int, np.ndarray]]) -> Iterator:
    """L·y = b; returns my ``{k: y_k}`` segments (diag owners only)."""
    result = yield from _substitute(ctx, state, b_segments, "forward")
    return result


def backward_substitute(ctx, state: HplState,
                        y_segments: Optional[Dict[int, np.ndarray]]) -> Iterator:
    """U·x = y; returns my ``{k: x_k}`` segments (diag owners only)."""
    result = yield from _substitute(ctx, state, y_segments, "backward")
    return result


def _substitute(ctx, state: HplState, rhs_segments, direction: str) -> Iterator:
    grid = state.grid
    nb = grid.nb
    nblocks = grid.nblocks
    verify = state.verify
    tag_kind = "fsub" if direction == "forward" else "bsub"
    # Contributions cross column teams (the owner of (bi, bi) is usually
    # in a different column team than the depositor), so deposit tags
    # ride the *initial* team's mailboxes, whose op counters advance in
    # lockstep on every image.
    base_tag = ctx.initial_team.next_op_tag(tag_kind)
    order = range(nblocks) if direction == "forward" else range(nblocks - 1, -1, -1)
    out: Dict[int, np.ndarray] = {}

    for k in order:
        diag_owner = grid.owner_index(k, k)
        me_is_diag = grid.owns(k, k)
        col_team = state.col_team
        # members of column team (k mod Q) hold every block of column k;
        # the solve step is collective over that team only
        in_col_team = grid.my_col == k % grid.q

        if me_is_diag:
            # gather contributions from previously solved rows
            need = _deposit_count(grid, k, direction)
            acc = np.zeros(nb) if verify else None
            if need:
                deposits = yield from _wait_values(
                    ctx, ctx.initial_team, base_tag + (k, "acc"), need
                )
                if verify:
                    for d in deposits:
                        acc += d
            if verify:
                rhs = rhs_segments[k] - acc
                packed = state.block(k, k)
                lower, upper = unpack_lu(packed)
                if direction == "forward":
                    seg = np.linalg.solve(lower, rhs)
                else:
                    seg = np.linalg.solve(upper, rhs)
                out[k] = seg
                payload: object = seg.copy()
            else:
                payload = SizedPayload(nb * 8)
            yield ctx.compute_cost(trsm_flops(nb, 1))
        else:
            payload = None

        # broadcast the solved segment down column k's team
        if in_col_team and col_team.size > 1:
            src = state.col_team_index_of_row(k % grid.p)
            payload = yield from ctx.co_broadcast(
                payload, source_image=src, team=col_team
            )

        # owners of the unsolved blocks in column k push contributions
        if direction == "forward":
            pending = grid.my_blocks_in_col(k, from_bi=k + 1)
        else:
            pending = [bi for bi in grid.my_blocks_in_col(k) if bi < k]
        for bi in pending:
            if verify:
                contrib = state.block(bi, k) @ payload
            else:
                contrib = SizedPayload(nb * 8)
            yield ctx.compute_cost(gemm_flops(nb, 1, nb))
            owner = grid.owner_index(bi, bi)
            yield from _send_value(
                ctx, ctx.initial_team, owner, base_tag + (bi, "acc"), contrib,
                path="auto",
            )
    return out


def solve(ctx, state: HplState, seed: int = 99) -> Iterator:
    """Full Ax = b solve against the factored blocks.

    Generates a deterministic b, runs both substitutions, and (verify
    mode) returns ``(x_segments, b_segments)`` for residual checking;
    model mode returns ``(None, None)`` after charging the costs.
    """
    grid = state.grid
    nb = grid.nb
    if state.verify:
        rng = np.random.default_rng(seed)
        full_b = rng.random(grid.n)
        b_segments = {
            k: full_b[k * nb:(k + 1) * nb].copy()
            for k in range(grid.nblocks) if grid.owns(k, k)
        }
    else:
        b_segments = None
    y = yield from forward_substitute(ctx, state, b_segments)
    x = yield from backward_substitute(ctx, state, y)
    return x, b_segments
