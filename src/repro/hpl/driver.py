"""HPL driver: team setup, the factorization loop, GFLOP/s accounting,
and the residual check.

This is the CAF port of HPL the paper benchmarks in §V-B (itself based
on the CAF 2.0 HPC Challenge port): the matrix is block-cyclic over a
P×Q grid, row teams broadcast L panels, column teams search pivots and
broadcast U rows, and every collective runs through whatever strategy
the active :class:`~repro.runtime.config.RuntimeConfig` selects — which
is exactly how Figure 1 separates UHCAF-2level from UHCAF-1level from
CAF 2.0 from MPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..runtime.config import RuntimeConfig, UHCAF_2LEVEL
from ..runtime.program import SpmdResult, run_spmd
from ..machine import MachineSpec
from .costmodel import hpl_total_flops
from .grid import BlockCyclicGrid, grid_shape
from .panel import factorize_panel
from .solve import solve as run_solve
from .state import HplState, make_block
from .update import broadcast_panel, reconstruct_lu, update_trailing

__all__ = ["HplReport", "hpl_main", "run_hpl"]


@dataclass
class HplReport:
    """One image's view of the run (identical across images except for
    the residuals, which only image 1 computes)."""

    n: int
    nb: int
    p: int
    q: int
    seconds: float
    gflops: float
    #: ‖A − L·U‖/‖A‖ (verify mode)
    residual: Optional[float] = None
    #: ‖A·x − b‖/(‖A‖·‖x‖) (verify mode with ``solve=True``)
    solve_residual: Optional[float] = None


def hpl_main(ctx, n: int, nb: int, verify: bool = False, seed: int = 1234,
             solve: bool = True):
    """The SPMD body: runs on every image; returns an :class:`HplReport`.

    ``solve`` runs the distributed triangular solves after the
    factorization (inside the timed region, as HPL does); the standard
    GFLOP/s formula already includes their 3n²/2 flops.
    """
    num = ctx.num_images()
    p, q = grid_shape(num)
    me = ctx.this_image()
    grid = BlockCyclicGrid(n=n, nb=nb, p=p, q=q, index=me)

    # --- teams: one per grid row, one per grid column --------------------
    row_team = yield from ctx.form_team(grid.row_team_number)
    col_team = yield from ctx.form_team(grid.col_team_number)
    state = HplState(grid, row_team, col_team, verify=verify, seed=seed)
    yield from ctx.sync_all()

    # --- timed factorization + solve ---------------------------------------
    t0 = ctx.now
    for k in range(grid.nblocks):
        yield from factorize_panel(ctx, state, k)
        yield from broadcast_panel(ctx, state, k)
        yield from update_trailing(ctx, state, k)
    x_segments = b_segments = None
    if solve:
        x_segments, b_segments = yield from run_solve(ctx, state, seed=seed + 1)
    yield from ctx.sync_all()
    seconds = ctx.now - t0
    gflops = hpl_total_flops(n) / seconds / 1e9

    # --- verification: gather everything at image 1 and check ‖A−LU‖ ----
    residual = None
    solve_residual = None
    if verify:
        # Publish my state, rendezvous, then image 1 assembles.  The
        # idiomatic CAF gather would pull blocks through a scratch
        # coarray; the verifier reads owners' states directly (zero-cost
        # data plane) since the factorization is already timed and done.
        states = ctx.world.__dict__.setdefault("hpl_states", {})
        states[me] = state
        if solve:
            solutions = ctx.world.__dict__.setdefault("hpl_solutions", {})
            solutions[me] = (x_segments, b_segments)
        yield from ctx.sync_all()
        if me == 1:
            gathered = {}
            for bi in range(grid.nblocks):
                for bj in range(grid.nblocks):
                    owner = grid.owner_index(bi, bj)
                    gathered[(bi, bj)] = states[owner].block(bi, bj)
            lower, upper = reconstruct_lu(gathered, n, nb)
            original = np.zeros((n, n))
            for bi in range(grid.nblocks):
                for bj in range(grid.nblocks):
                    original[bi * nb:(bi + 1) * nb, bj * nb:(bj + 1) * nb] = (
                        make_block(n, nb, bi, bj, seed)
                    )
            residual = float(
                np.linalg.norm(original - lower @ upper)
                / np.linalg.norm(original)
            )
            if solve:
                x = np.zeros(n)
                b = np.zeros(n)
                for _, (xs, bs) in solutions.items():
                    for kb, seg in xs.items():
                        x[kb * nb:(kb + 1) * nb] = seg
                    for kb, seg in bs.items():
                        b[kb * nb:(kb + 1) * nb] = seg
                solve_residual = float(
                    np.linalg.norm(original @ x - b)
                    / (np.linalg.norm(original) * np.linalg.norm(x))
                )

    return HplReport(n=n, nb=nb, p=p, q=q, seconds=seconds,
                     gflops=gflops, residual=residual,
                     solve_residual=solve_residual)


def run_hpl(
    n: int,
    nb: int,
    num_images: int,
    images_per_node: int,
    config: RuntimeConfig = UHCAF_2LEVEL,
    spec: Optional[MachineSpec] = None,
    verify: bool = False,
    seed: int = 1234,
    solve: bool = True,
) -> HplReport:
    """Convenience wrapper: run HPL and return image 1's report."""

    def main(ctx):
        report = yield from hpl_main(ctx, n, nb, verify=verify, seed=seed,
                                     solve=solve)
        return report

    result: SpmdResult = run_spmd(
        main, num_images=num_images, images_per_node=images_per_node,
        spec=spec, config=config,
    )
    return result.results[0]
