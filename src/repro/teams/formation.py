"""Team formation: ``form team`` / ``change team`` / ``end team`` (§III).

``form_team`` is collective over the current team: every member calls it
with a *team number*; members supplying the same number become one new
team.  The exchange is modeled the way a runtime actually implements a
split — member metadata travels to the current team's index-1 image,
which computes the partition and distributes assignments — so formation
has an honest, measurable cost (experiment E9) rather than being free.

The returned :class:`~repro.teams.team.TeamView` is a ``team_type``
value: inert until ``change team`` makes it current.  ``change team``
and ``end team`` carry the standard's implicit synchronization of the
new team (we run the configured barrier).
"""

from __future__ import annotations

from typing import Iterator, Optional

from .team import TeamShared, TeamView

__all__ = ["form_team", "FORM_RECORD_NBYTES"]

#: metadata record exchanged per member during formation
#: (parent index, team number, requested new index, node id)
FORM_RECORD_NBYTES = 32


def _partition(records: list[tuple[int, int, Optional[int]]]) -> dict[int, list[int]]:
    """Group formation records into new teams.

    ``records`` holds ``(parent_index, team_number, new_index)`` for every
    member of the parent team.  Returns ``team_number → parent indices
    ordered by new-team index``.  Within a group either every member
    requested a ``new_index`` (which must then be exactly 1..size) or none
    did (members are ordered by parent index, the processor-dependent
    default OpenUH uses).
    """
    groups: dict[int, list[tuple[int, Optional[int]]]] = {}
    for parent_index, number, new_index in records:
        groups.setdefault(number, []).append((parent_index, new_index))

    out: dict[int, list[int]] = {}
    for number, entries in groups.items():
        requested = [e for e in entries if e[1] is not None]
        if requested and len(requested) != len(entries):
            raise ValueError(
                f"form team {number}: NEW_INDEX given by {len(requested)} of "
                f"{len(entries)} members — must be all or none"
            )
        if requested:
            indices = sorted(e[1] for e in entries)
            if indices != list(range(1, len(entries) + 1)):
                raise ValueError(
                    f"form team {number}: NEW_INDEX values {indices} are not "
                    f"a permutation of 1..{len(entries)}"
                )
            ordered = sorted(entries, key=lambda e: e[1])
        else:
            ordered = sorted(entries, key=lambda e: e[0])
        out[number] = [parent_index for parent_index, _ in ordered]
    return out


def form_team(
    ctx,
    view: TeamView,
    team_number: int,
    new_index: Optional[int] = None,
) -> Iterator:
    """Collectively split ``view``'s team; returns this image's
    :class:`TeamView` of its new team (via ``yield from``)."""
    if team_number < 0:
        raise ValueError(
            f"team_number must be >= 0 (negative ids are reserved), got {team_number}"
        )
    shared = view.shared
    tag = view.next_op_tag("form")
    root = 1
    me = view.index
    record = (me, team_number, new_index)

    from ..collectives.reduce import _send_value, _wait_values  # local import: avoid cycle

    if me != root:
        yield from _send_value(ctx, view, root, tag, record, path="auto")
    if me == root:
        records = [record]
        if view.size > 1:
            records += (yield from _wait_values(ctx, view, tag, view.size - 1))
        partition = _partition(records)
        shared.formation_counter += 1
        fseq = shared.formation_counter
        assignments: dict[int, tuple[TeamShared, int]] = {}
        for number in sorted(partition):
            parent_indices = partition[number]
            members = [shared.proc_of(i) for i in parent_indices]
            new_shared = TeamShared(
                engine=ctx.engine,
                topology=ctx.machine.topology,
                members=members,
                team_number=number,
                parent=shared,
                leader_strategy=ctx.config.leader_strategy,
                formation_seq=fseq,
            )
            for parent_index in parent_indices:
                assignments[parent_index] = (new_shared, number)
        out_tag = tag + ("assign",)
        for parent_index in range(1, view.size + 1):
            if parent_index == root:
                continue
            yield from _send_value(
                ctx, view, parent_index, out_tag, assignments[parent_index],
                path="auto",
            )
        my_shared, _ = assignments[root]
    else:
        got = yield from _wait_values(ctx, view, tag + ("assign",), 1)
        my_shared, _ = got[0]

    return TeamView(my_shared, view.proc, parent_view=view)
