"""Team runtime structures: the paper's ``team_type`` (§III).

The paper's runtime stores, per team, "image-specific information, such
as the mapping from a new index to the process identifier in the lower
communication layer", plus the synchronization state collectives need
(its Algorithm 1 reads ``team.cocounter``).  We split that into:

* :class:`TeamShared` — one object per formed team, shared by all its
  members: the index→proc mapping, the precomputed
  :class:`~repro.teams.hierarchy.HierarchyInfo`, and the synchronization
  cells (dissemination ``sync_flags``, linear-barrier cocounters and
  release flags, tagged mailboxes for data-carrying collectives).
* :class:`TeamView` — one per member image: its 1-based index, its
  barrier/collective sequence counters, and a link to the view of the
  parent team it was formed from.

All cross-image *data* lives in shared Python structures at zero model
cost; every *notification or payload movement* that touches them is
charged through the conduit before the shared structure is updated.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Hashable, List, Optional, Sequence

from ..machine import Topology
from ..sim import Cell, Engine
from .hierarchy import HierarchyInfo

__all__ = ["TeamShared", "TeamView", "INITIAL_TEAM_NUMBER"]

#: the Fortran initial team has no user team_number; we use -1 like OpenUH
INITIAL_TEAM_NUMBER = -1

_uid_counter = itertools.count(1)


class TeamShared:
    """Shared state of one formed team."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        members: Sequence[int],
        team_number: int,
        parent: Optional["TeamShared"],
        leader_strategy: str = "lowest",
        formation_seq: int = 0,
    ):
        if not members:
            raise ValueError("a team needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate member procs in team")
        self.uid = next(_uid_counter)
        self.engine = engine
        self.team_number = team_number
        self.parent = parent
        #: teams formed from this one (filled as children are created) —
        #: lets diagnostics walk the whole team tree from the initial team
        self.children: List["TeamShared"] = []
        if parent is not None:
            parent.children.append(self)
        #: global proc ids ordered by team index (position p ↔ index p+1)
        self.members: List[int] = list(members)
        self.proc_to_index: Dict[int, int] = {
            proc: pos + 1 for pos, proc in enumerate(self.members)
        }
        self.hierarchy = HierarchyInfo.build(
            topology, self.members, strategy=leader_strategy,
            formation_seq=formation_seq,
        )
        n = len(self.members)
        self.num_rounds = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        # --- synchronization cells, indexed by 1-based team index -------
        self._diss_flags: Dict[tuple, Cell] = {}
        self._cocounter: Dict[int, Cell] = {}
        self._release: Dict[int, Cell] = {}
        # --- tagged mailboxes for data-carrying collectives --------------
        self._mail_cells: Dict[tuple, Cell] = {}
        self._mail_values: Dict[tuple, List[Any]] = {}
        # --- node-shared window slots (shmwin collectives) ---------------
        #: key → [value, remaining_readers]; entries free themselves when
        #: the last expected reader takes the value, so a long run of
        #: window collectives never accumulates dead slots
        self._win_values: Dict[tuple, list] = {}
        # --- tuned-dispatch selections (resolved once per team) ----------
        #: (kind, payload band) → algorithm name, filled lazily by
        #: :mod:`repro.collectives.tuned` the first time a tuned
        #: collective of that regime runs on this team
        self.tuned_selections: Dict[tuple, str] = {}
        # --- form_team rendezvous state ----------------------------------
        self.formation_counter = 0
        self._formations: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.members)

    def proc_of(self, index: int) -> int:
        """Global proc id of team index ``index`` (1-based) — the paper's
        image-index mapping array lookup."""
        if not 1 <= index <= self.size:
            raise ValueError(f"image index {index} out of range [1, {self.size}]")
        return self.members[index - 1]

    def index_of(self, proc: int) -> int:
        """Team index of global proc ``proc``; raises if not a member."""
        try:
            return self.proc_to_index[proc]
        except KeyError:
            raise ValueError(f"proc {proc} is not a member of team {self!r}") from None

    def ancestors(self) -> List["TeamShared"]:
        """Chain parent, grandparent, ... up to the initial team."""
        out = []
        cur = self.parent
        while cur is not None:
            out.append(cur)
            cur = cur.parent
        return out

    # ------------------------------------------------------------------
    # Dissemination sync_flags (one monotonically increasing counter per
    # member per round — the "carry" that makes the one-wait barrier work)
    # ------------------------------------------------------------------
    def diss_flag(self, index: int, round_: int, variant: str = "tdlb") -> Cell:
        key = (variant, index, round_)
        cell = self._diss_flags.get(key)
        if cell is None:
            cell = Cell(
                self.engine, 0,
                name=f"t{self.uid}.{variant}[{index}][{round_}]",
                meta={"kind": "diss", "team": self, "index": index,
                      "round": round_, "variant": variant},
            )
            self._diss_flags[key] = cell
        return cell

    def cocounter(self, index: int) -> Cell:
        """Arrival counter at a node leader (Algorithm 1's ``cocounter``)."""
        cell = self._cocounter.get(index)
        if cell is None:
            cell = Cell(
                self.engine, 0, name=f"t{self.uid}.cocounter[{index}]",
                meta={"kind": "cocounter", "team": self, "index": index},
            )
            self._cocounter[index] = cell
        return cell

    def release_flag(self, index: int) -> Cell:
        """Per-slave release counter for the linear barrier's second phase."""
        cell = self._release.get(index)
        if cell is None:
            cell = Cell(
                self.engine, 0, name=f"t{self.uid}.release[{index}]",
                meta={"kind": "release", "team": self, "index": index},
            )
            self._release[index] = cell
        return cell

    # ------------------------------------------------------------------
    # Tagged mailboxes (data plane of reductions, broadcasts, formation)
    # ------------------------------------------------------------------
    def mail_cell(self, index: int, tag: Hashable) -> Cell:
        """Arrival counter of mailbox ``tag`` at member ``index``."""
        key = (index, tag)
        cell = self._mail_cells.get(key)
        if cell is None:
            cell = Cell(
                self.engine, 0, name=f"t{self.uid}.mail[{index}]{tag}",
                meta={"kind": "mail", "team": self, "index": index, "tag": tag},
            )
            self._mail_cells[key] = cell
        return cell

    def deposit(self, index: int, tag: Hashable, value: Any) -> None:
        """Land ``value`` in member ``index``'s mailbox ``tag`` and bump its
        counter — called from transfer delivery callbacks only."""
        self._mail_values.setdefault((index, tag), []).append(value)
        self.mail_cell(index, tag).add(1)

    def collect(self, index: int, tag: Hashable) -> List[Any]:
        """Drain mailbox ``tag`` at member ``index`` and free its storage."""
        key = (index, tag)
        values = self._mail_values.pop(key, [])
        self._mail_cells.pop(key, None)
        return values

    # ------------------------------------------------------------------
    # Node-shared window slots (data plane of the shmwin collectives)
    # ------------------------------------------------------------------
    def win_put(self, key: tuple, value: Any, readers: int) -> None:
        """Publish ``value`` in window slot ``key`` for exactly ``readers``
        consumers — called from store-delivery callbacks only.  With no
        expected readers the slot is never materialized."""
        if readers > 0:
            self._win_values[key] = [value, readers]

    def win_take(self, key: tuple) -> Any:
        """Read window slot ``key``; the slot frees itself when its last
        expected reader has taken the value."""
        entry = self._win_values[key]
        entry[1] -= 1
        if entry[1] <= 0:
            del self._win_values[key]
        return entry[0]

    def win_peek_nbytes(self, key: tuple) -> int:
        """Payload size of slot ``key`` without consuming it — readers
        charge the load transfer before taking the value."""
        from ..collectives.base import payload_nbytes

        return payload_nbytes(self._win_values[key][0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TeamShared(uid={self.uid}, number={self.team_number}, "
            f"size={self.size})"
        )


class TeamView:
    """One image's handle on a team — what a ``team_type`` variable holds."""

    def __init__(self, shared: TeamShared, proc: int, parent_view: Optional["TeamView"]):
        self.shared = shared
        self.proc = proc
        self.index = shared.index_of(proc)  # 1-based, this_image() in the team
        self.parent_view = parent_view
        #: per-variant invocation counters driving the sync_flags carry;
        #: identical across members because SPMD images call team
        #: collectives in the same order
        self._seqs: Dict[str, int] = {}
        #: per-collective-call counter for mailbox tags (same SPMD argument)
        self.op_seq = 0

    @property
    def size(self) -> int:
        return self.shared.size

    @property
    def team_number(self) -> int:
        return self.shared.team_number

    def next_seq(self, variant: str) -> int:
        """Invocation number of the next ``variant`` barrier on this team
        (1 on first call).  The carry predicate waits for flag >= seq."""
        seq = self._seqs.get(variant, 0) + 1
        self._seqs[variant] = seq
        return seq

    def next_op_tag(self, kind: str) -> tuple:
        """A tag unique to this collective call, agreed on by all members
        because SPMD images issue team collectives in the same order."""
        self.op_seq += 1
        return (kind, self.op_seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TeamView(team={self.shared.uid}, index={self.index}/{self.size})"
