"""Fortran-style free-function forms of the team intrinsics (§III).

OpenUH lowers ``this_image()``, ``num_images()``, ``team_id()``,
``get_team()`` and ``image_index()`` to runtime calls; in this
reproduction those live as methods on
:class:`~repro.runtime.program.CafContext`.  This module provides the
free-function spellings so ported Fortran code reads like the original::

    from repro.teams.intrinsics import this_image, num_images, team_id

    def main(ctx):
        me = this_image(ctx)          # instead of ctx.this_image()
        ...

All functions are pure queries (no simulated time), matching the
intrinsics' semantics.
"""

from __future__ import annotations

from typing import Optional

from .team import TeamView

__all__ = [
    "this_image",
    "num_images",
    "team_id",
    "get_team",
    "image_index",
]


def this_image(ctx, team: Optional[TeamView] = None) -> int:
    """1-based index of the calling image in ``team`` (default current)."""
    return ctx.this_image(team)


def num_images(ctx, team: Optional[TeamView] = None) -> int:
    """Number of images in ``team`` (default current)."""
    return ctx.num_images(team)


def team_id(ctx) -> int:
    """The current team's number (−1 for the initial team)."""
    return ctx.team_id()


def get_team(ctx, level: str = "current") -> TeamView:
    """The current, parent, or initial team handle."""
    return ctx.get_team(level)


def image_index(ctx, team: TeamView, initial_index: int) -> int:
    """Index in ``team`` of the image with the given initial-team index,
    or 0 if it is not a member."""
    return ctx.image_index(team, initial_index)
