"""Coarray Fortran teams: ``team_type``, formation, and hierarchy metadata.

Implements the paper's §III (team support) and the formation-time
hierarchy precomputation of §IV-A.
"""

from .formation import form_team
from .hierarchy import LEADER_STRATEGIES, HierarchyInfo
from .team import INITIAL_TEAM_NUMBER, TeamShared, TeamView

__all__ = [
    "form_team",
    "HierarchyInfo",
    "LEADER_STRATEGIES",
    "TeamShared",
    "TeamView",
    "INITIAL_TEAM_NUMBER",
]
