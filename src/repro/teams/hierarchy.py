"""Memory-hierarchy metadata for a team (the paper's §IV-A methodology).

At team-formation time the runtime inspects the placement of the team's
members and precomputes:

* the **intranode sets** — which team members share each physical node;
* a **leader** per node (deterministically elected);
* the ordered **leader list**, which is the participant set of the
  inter-node (dissemination) phase of every two-level collective.

Collectives then do zero topology work per call — they read this object.
The paper stores the same information in its ``team_type`` runtime
structure; we attach a :class:`HierarchyInfo` to every
:class:`~repro.teams.team.TeamShared`.

Leader election strategies (experiment E7 ablates them):

``lowest``
    The smallest team index on each node (the paper's choice: a
    "designated leader", stable and cheap).
``highest``
    The largest index — identical cost in a symmetric model, used to
    show the choice is immaterial for correctness.
``rotating``
    Index ``k mod |set|`` within each intranode set, where ``k`` is the
    formation sequence number — spreads leader load across images when
    teams are re-formed repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..machine import Topology

__all__ = ["HierarchyInfo", "LEADER_STRATEGIES"]

LEADER_STRATEGIES = ("lowest", "highest", "rotating")


@dataclass(frozen=True)
class HierarchyInfo:
    """Precomputed two-level (plus optional socket-level) structure.

    All member references are **1-based team indices** (the public CAF
    numbering), not global proc ids.
    """

    #: node id → sorted team indices of members on that node
    node_sets: Dict[int, List[int]]
    #: team index → team index of its node's leader
    leader_of: Dict[int, int]
    #: leaders ordered by team index — the inter-node participant list
    leaders: List[int]
    #: leader team index → 0-based rank within :attr:`leaders`
    leader_rank: Dict[int, int]
    #: team index → node id
    node_of: Dict[int, int]
    #: team index → socket id within its node (for the NUMA ablation)
    socket_of: Dict[int, int]

    # ------------------------------------------------------------------
    @property
    def num_nodes_used(self) -> int:
        return len(self.node_sets)

    @property
    def max_images_per_node(self) -> int:
        return max(len(s) for s in self.node_sets.values())

    @property
    def is_flat(self) -> bool:
        """True when every member is alone on its node — the paper's
        flat-hierarchy configuration, where two-level degenerates to the
        leader phase only."""
        return self.max_images_per_node == 1

    def is_leader(self, index: int) -> bool:
        return self.leader_of[index] == index

    def slaves_of(self, leader: int) -> List[int]:
        """Non-leader members sharing the leader's node, sorted."""
        return [i for i in self.node_sets[self.node_of[leader]] if i != leader]

    def intranode_peers(self, index: int) -> List[int]:
        """All members (incl. ``index``) on ``index``'s node."""
        return self.node_sets[self.node_of[index]]

    def socket_sets(self, node: int) -> Dict[int, List[int]]:
        """Socket id → member indices, within one node (3-level ablation)."""
        groups: Dict[int, List[int]] = {}
        for idx in self.node_sets[node]:
            groups.setdefault(self.socket_of[idx], []).append(idx)
        for members in groups.values():
            members.sort()
        return groups

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        topology: Topology,
        members: Sequence[int],
        strategy: str = "lowest",
        formation_seq: int = 0,
    ) -> "HierarchyInfo":
        """Compute hierarchy metadata for a team.

        ``members`` lists global proc ids ordered by team index (position
        p holds the proc of team index p+1).
        """
        if not members:
            # Guard here rather than letting max()/indexing blow up later:
            # max_images_per_node / is_flat on an empty hierarchy raised a
            # bare "max() arg is an empty sequence".
            raise ValueError(
                "HierarchyInfo.build: a team needs at least one member "
                "(got an empty member list)"
            )
        if strategy not in LEADER_STRATEGIES:
            raise ValueError(
                f"unknown leader strategy {strategy!r}; have {LEADER_STRATEGIES}"
            )
        node_of: Dict[int, int] = {}
        socket_of: Dict[int, int] = {}
        node_sets: Dict[int, List[int]] = {}
        for pos, proc in enumerate(members):
            index = pos + 1
            node = topology.node_of(proc)
            node_of[index] = node
            socket_of[index] = topology.socket_of(proc)
            node_sets.setdefault(node, []).append(index)
        for indices in node_sets.values():
            indices.sort()

        leader_of: Dict[int, int] = {}
        for node, indices in node_sets.items():
            if strategy == "lowest":
                leader = indices[0]
            elif strategy == "highest":
                leader = indices[-1]
            else:  # rotating
                leader = indices[formation_seq % len(indices)]
            for idx in indices:
                leader_of[idx] = leader

        leaders = sorted({leader_of[i] for i in leader_of})
        leader_rank = {leader: r for r, leader in enumerate(leaders)}
        return HierarchyInfo(
            node_sets=node_sets,
            leader_of=leader_of,
            leaders=leaders,
            leader_rank=leader_rank,
            node_of=node_of,
            socket_of=socket_of,
        )
