"""Calibrated model constants and the rationale for each value.

The reproduction's claims are about *ratios* (which algorithm wins, by
roughly what factor, where crossovers fall), so what matters is that the
relative magnitudes below are faithful to the paper's platform:

* A cache-coherent intra-node flag write (~0.1 µs) is an order of
  magnitude cheaper than an InfiniBand one-way message (~2 µs wire +
  software), which in turn is an order of magnitude cheaper than a
  conduit software path under contention.
* GASNet's RDMA-put software path costs several µs per message and its
  per-node progress engine (HCA lock + completion-queue processing)
  serializes concurrent operations issued by the images of one node —
  this is the effect §IV-A of the paper describes as "all those
  notifications would have to be serialized".  Raw IB verbs have a thin,
  non-serializing path, which is why the paper finds dissemination
  *directly over verbs* competitive with TDLB.
* A hierarchy-**unaware** runtime pays the conduit path even when source
  and target share a node (GASNet's ibv conduit without PSHM loops
  same-node RMA through the HCA/AM path, with the extra delay of waiting
  for the target to poll).  A hierarchy-**aware** runtime does a direct
  store instead.  This asymmetry is the entire lever of the paper.

Numbers were then fine-tuned so the microbenchmark harness lands in the
paper's reported bands (≈26× barrier, ≈74× reduction, ≈3× broadcast,
≈32% HPL); see EXPERIMENTS.md for the measured outcomes.

:func:`check_calibration` re-derives the headline ratios from the
simulator and checks each against its band, so a constant drifting out
of the paper's regime is caught directly (``python -m repro.calibration``
runs it; the probes are independent simulations, so ``--jobs`` fans
them across worker processes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ConduitProfile",
    "DIRECT_SMP",
    "IB_VERBS",
    "GASNET_RDMA",
    "CAF20_GASNET",
    "MPI_NATIVE",
    "BACKEND_EFFICIENCY",
    "PAPER_NODES",
    "PAPER_CORES_PER_NODE",
    "CalibrationResult",
    "CALIBRATION_CHECKS",
    "check_calibration",
]

#: the paper's cluster size (44 nodes) and node width (dual quad-core)
PAPER_NODES = 44
PAPER_CORES_PER_NODE = 8


@dataclass(frozen=True)
class ConduitProfile:
    """Per-message software costs of one communication stack.

    Attributes
    ----------
    remote_overhead:
        Sender-side CPU time to issue one inter-node message.
    local_overhead:
        Sender-side CPU time when the target shares the node but the
        message still goes through the conduit (hierarchy-unaware path).
    loopback_penalty:
        Extra target-side delay for conduit-loopback delivery (the AM
        handler runs only when the target's runtime polls).
    serialize_overhead:
        If true, software overhead occupies the node's single conduit
        progress engine (GASNet's HCA lock / CQ poller) so concurrent
        issues from co-located images serialize; if false, overhead is
        charged on each image's own core in parallel (raw verbs QPs,
        independent MPI processes).
    recv_overhead:
        Receiver-side CPU time per message (two-sided conduits only).
    loopback_bw_factor:
        Effective intra-node streaming rate of the loopback path as a
        fraction of the node's memcpy bandwidth.  GASNet's ibv loopback
        bounces payloads through ≤4 KiB Active-Message buffers, roughly
        halving throughput versus a direct copy; the hierarchy-aware
        direct path always streams at full rate.
    """

    name: str
    remote_overhead: float
    local_overhead: float
    loopback_penalty: float = 0.0
    serialize_overhead: bool = False
    recv_overhead: float = 0.0
    loopback_bw_factor: float = 1.0


#: The hierarchy-aware intra-node path: a plain store into a shared
#: segment plus a memory fence — no conduit involvement at all.
DIRECT_SMP = ConduitProfile(
    name="direct-smp",
    remote_overhead=0.0,  # never used for remote targets
    local_overhead=0.04e-6,
    loopback_penalty=0.0,
    serialize_overhead=False,
)

#: Thin path straight onto the HCA: post a work request to a per-image
#: queue pair.  No shared progress engine, minimal per-message cost.
IB_VERBS = ConduitProfile(
    name="ib-verbs",
    remote_overhead=0.6e-6,
    local_overhead=0.9e-6,  # loopback QP: still an HCA transaction
    loopback_penalty=0.6e-6,
    serialize_overhead=False,
    loopback_bw_factor=0.8,
)

#: GASNet 1.22 ibv-conduit RDMA-put path as used by UHCAF: several µs of
#: software per message, serialized through the node-level progress
#: engine, and a costly AM-loopback for same-node targets.
GASNET_RDMA = ConduitProfile(
    name="gasnet-rdma",
    remote_overhead=2.4e-6,
    local_overhead=7.7e-6,
    loopback_penalty=3.5e-6,
    serialize_overhead=True,
    loopback_bw_factor=0.4,
)

#: Rice CAF 2.0 runs over the same GASNet but adds source-to-source glue
#: (function-pointer dispatch, descriptor marshalling) on every call.
CAF20_GASNET = ConduitProfile(
    name="caf2.0-gasnet",
    remote_overhead=3.0e-6,
    local_overhead=7.8e-6,
    loopback_penalty=3.5e-6,
    serialize_overhead=True,
    loopback_bw_factor=0.4,
)

#: A tuned native MPI stack (MVAPICH / Open MPI over verbs): two-sided,
#: moderate per-message software cost on both ends, shared-memory BTL for
#: same-node peers (so its local path is cheap — MPI was already
#: hierarchy-aware at the transport level, which is why the paper's flat
#: MPI barriers are far better than flat GASNet ones).
MPI_NATIVE = ConduitProfile(
    name="mpi-native",
    remote_overhead=1.3e-6,
    local_overhead=0.35e-6,
    loopback_penalty=0.25e-6,
    serialize_overhead=False,
    recv_overhead=0.5e-6,
)

#: Effective DGEMM efficiency (fraction of the 8.8 GFLOP/s per-core peak)
#: by compiler backend.  The paper's HPL builds use -O3 loop nests, not a
#: vendor BLAS, so rates are a few percent of peak; the values are
#: calibrated from Figure 1's 256-core points (OpenUH-generated code
#: reached 95 GFLOP/s where the GFortran backend reached 29.48, a ~3.2×
#: code-quality gap; the untuned GCC+Open MPI build sits in between).
BACKEND_EFFICIENCY = {
    "openuh": 0.10,
    "gfortran": 0.031,
    "gcc-mpi": 0.085,
}


# ----------------------------------------------------------------------
# Calibration band checks
# ----------------------------------------------------------------------
#
# Each probe re-measures one headline ratio from the simulator (or, for
# the pure-constant checks, straight from the profiles above) and must
# land inside its band.  Probes are module-level functions so they
# pickle into :mod:`repro.exec` worker processes, and they import the
# benchmark stack lazily — this module sits below ``runtime.config`` in
# the import graph.

def _probe_barrier_peak_speedup() -> float:
    """TDLB vs pure dissemination at the paper's peak config, 16(2)."""
    from .bench.microbench import barrier_benchmark
    from .runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

    two = barrier_benchmark(16, 8, UHCAF_2LEVEL).seconds_per_op
    one = barrier_benchmark(16, 8, UHCAF_1LEVEL).seconds_per_op
    return one / two


def _probe_reduce_speedup_at_scale() -> float:
    """Two-level vs flat co_sum at the full 352(44) cluster."""
    from .bench.microbench import reduce_benchmark
    from .runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

    two = reduce_benchmark(352, 8, UHCAF_2LEVEL).seconds_per_op
    one = reduce_benchmark(352, 8, UHCAF_1LEVEL).seconds_per_op
    return one / two


def _probe_broadcast_speedup_at_scale() -> float:
    """Two-level vs flat co_broadcast at the full 352(44) cluster."""
    from .bench.microbench import broadcast_benchmark
    from .runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

    two = broadcast_benchmark(352, 8, UHCAF_2LEVEL).seconds_per_op
    one = broadcast_benchmark(352, 8, UHCAF_1LEVEL).seconds_per_op
    return one / two


def _probe_tdlb_vs_raw_verbs() -> float:
    """TDLB over raw-IB dissemination at scale — 'only marginally more
    expensive' per the paper, so near 1.0."""
    from .bench.microbench import barrier_benchmark
    from .runtime.config import GASNET_IB_DISSEMINATION, UHCAF_2LEVEL

    tdlb = barrier_benchmark(352, 8, UHCAF_2LEVEL).seconds_per_op
    verbs = barrier_benchmark(352, 8, GASNET_IB_DISSEMINATION).seconds_per_op
    return tdlb / verbs


def _probe_conduit_local_gap() -> float:
    """Hierarchy-unaware vs -aware same-node cost: the paper's lever."""
    return GASNET_RDMA.local_overhead / DIRECT_SMP.local_overhead


def _probe_mpi_transport_hierarchy() -> float:
    """MPI's sm BTL makes its local path much cheaper than its remote
    one — the reason flat MPI beats flat GASNet in the paper."""
    return MPI_NATIVE.remote_overhead / MPI_NATIVE.local_overhead


#: ``(name, probe, lo, hi)`` — the band each measured ratio must hit.
CALIBRATION_CHECKS: Sequence[Tuple[str, Callable[[], float], float, float]] = (
    ("barrier-peak-speedup", _probe_barrier_peak_speedup, 20.0, 32.0),
    ("reduce-speedup-at-scale", _probe_reduce_speedup_at_scale, 50.0, 100.0),
    ("broadcast-speedup-at-scale", _probe_broadcast_speedup_at_scale, 2.0, 6.0),
    ("tdlb-vs-raw-verbs", _probe_tdlb_vs_raw_verbs, 0.5, 2.0),
    ("conduit-local-gap", _probe_conduit_local_gap, 50.0, 500.0),
    ("mpi-transport-hierarchy", _probe_mpi_transport_hierarchy, 2.0, 10.0),
)


@dataclass
class CalibrationResult:
    """One band check's outcome."""

    name: str
    lo: float
    hi: float
    value: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.error is None and self.value is not None
                and self.lo <= self.value <= self.hi)


def check_calibration(jobs=None, cache=None) -> List[CalibrationResult]:
    """Run every band check, optionally fanned across worker processes.

    Returns one :class:`CalibrationResult` per entry of
    :data:`CALIBRATION_CHECKS`, in order; a probe that raises becomes a
    failed result rather than aborting the rest.
    """
    from .exec import TaskSpec, run_tasks

    tasks = [TaskSpec(probe, label=name)
             for name, probe, _, _ in CALIBRATION_CHECKS]
    outcomes = run_tasks(tasks, jobs=jobs, cache=cache)
    results = []
    for (name, _, lo, hi), tres in zip(CALIBRATION_CHECKS, outcomes):
        if tres.ok:
            results.append(CalibrationResult(name=name, lo=lo, hi=hi,
                                             value=tres.value))
        else:
            results.append(CalibrationResult(name=name, lo=lo, hi=hi,
                                             error=tres.error or "failed"))
    return results


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.calibration",
        description="check the calibrated constants against the paper's "
                    "headline bands",
    )
    parser.add_argument("-j", "--jobs", default=None,
                        help="worker processes: an integer or 'auto' "
                             "(default: REPRO_JOBS env, else 1)")
    args = parser.parse_args(argv)

    results = check_calibration(jobs=args.jobs)
    width = max(len(r.name) for r in results)
    for r in results:
        if r.error is not None:
            print(f"  {r.name:<{width}}  ERROR  {r.error.splitlines()[0]}")
        else:
            status = "ok" if r.ok else "OUT OF BAND"
            print(f"  {r.name:<{width}}  {r.value:8.2f}  "
                  f"[{r.lo:g}, {r.hi:g}]  {status}")
    bad = [r for r in results if not r.ok]
    print(f"{len(results) - len(bad)}/{len(results)} calibration band(s) ok")
    return 1 if bad else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
