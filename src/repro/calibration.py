"""Calibrated model constants and the rationale for each value.

The reproduction's claims are about *ratios* (which algorithm wins, by
roughly what factor, where crossovers fall), so what matters is that the
relative magnitudes below are faithful to the paper's platform:

* A cache-coherent intra-node flag write (~0.1 µs) is an order of
  magnitude cheaper than an InfiniBand one-way message (~2 µs wire +
  software), which in turn is an order of magnitude cheaper than a
  conduit software path under contention.
* GASNet's RDMA-put software path costs several µs per message and its
  per-node progress engine (HCA lock + completion-queue processing)
  serializes concurrent operations issued by the images of one node —
  this is the effect §IV-A of the paper describes as "all those
  notifications would have to be serialized".  Raw IB verbs have a thin,
  non-serializing path, which is why the paper finds dissemination
  *directly over verbs* competitive with TDLB.
* A hierarchy-**unaware** runtime pays the conduit path even when source
  and target share a node (GASNet's ibv conduit without PSHM loops
  same-node RMA through the HCA/AM path, with the extra delay of waiting
  for the target to poll).  A hierarchy-**aware** runtime does a direct
  store instead.  This asymmetry is the entire lever of the paper.

Numbers were then fine-tuned so the microbenchmark harness lands in the
paper's reported bands (≈26× barrier, ≈74× reduction, ≈3× broadcast,
≈32% HPL); see EXPERIMENTS.md for the measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConduitProfile",
    "DIRECT_SMP",
    "IB_VERBS",
    "GASNET_RDMA",
    "CAF20_GASNET",
    "MPI_NATIVE",
    "BACKEND_EFFICIENCY",
    "PAPER_NODES",
    "PAPER_CORES_PER_NODE",
]

#: the paper's cluster size (44 nodes) and node width (dual quad-core)
PAPER_NODES = 44
PAPER_CORES_PER_NODE = 8


@dataclass(frozen=True)
class ConduitProfile:
    """Per-message software costs of one communication stack.

    Attributes
    ----------
    remote_overhead:
        Sender-side CPU time to issue one inter-node message.
    local_overhead:
        Sender-side CPU time when the target shares the node but the
        message still goes through the conduit (hierarchy-unaware path).
    loopback_penalty:
        Extra target-side delay for conduit-loopback delivery (the AM
        handler runs only when the target's runtime polls).
    serialize_overhead:
        If true, software overhead occupies the node's single conduit
        progress engine (GASNet's HCA lock / CQ poller) so concurrent
        issues from co-located images serialize; if false, overhead is
        charged on each image's own core in parallel (raw verbs QPs,
        independent MPI processes).
    recv_overhead:
        Receiver-side CPU time per message (two-sided conduits only).
    loopback_bw_factor:
        Effective intra-node streaming rate of the loopback path as a
        fraction of the node's memcpy bandwidth.  GASNet's ibv loopback
        bounces payloads through ≤4 KiB Active-Message buffers, roughly
        halving throughput versus a direct copy; the hierarchy-aware
        direct path always streams at full rate.
    """

    name: str
    remote_overhead: float
    local_overhead: float
    loopback_penalty: float = 0.0
    serialize_overhead: bool = False
    recv_overhead: float = 0.0
    loopback_bw_factor: float = 1.0


#: The hierarchy-aware intra-node path: a plain store into a shared
#: segment plus a memory fence — no conduit involvement at all.
DIRECT_SMP = ConduitProfile(
    name="direct-smp",
    remote_overhead=0.0,  # never used for remote targets
    local_overhead=0.04e-6,
    loopback_penalty=0.0,
    serialize_overhead=False,
)

#: Thin path straight onto the HCA: post a work request to a per-image
#: queue pair.  No shared progress engine, minimal per-message cost.
IB_VERBS = ConduitProfile(
    name="ib-verbs",
    remote_overhead=0.6e-6,
    local_overhead=0.9e-6,  # loopback QP: still an HCA transaction
    loopback_penalty=0.6e-6,
    serialize_overhead=False,
    loopback_bw_factor=0.8,
)

#: GASNet 1.22 ibv-conduit RDMA-put path as used by UHCAF: several µs of
#: software per message, serialized through the node-level progress
#: engine, and a costly AM-loopback for same-node targets.
GASNET_RDMA = ConduitProfile(
    name="gasnet-rdma",
    remote_overhead=2.4e-6,
    local_overhead=7.7e-6,
    loopback_penalty=3.5e-6,
    serialize_overhead=True,
    loopback_bw_factor=0.4,
)

#: Rice CAF 2.0 runs over the same GASNet but adds source-to-source glue
#: (function-pointer dispatch, descriptor marshalling) on every call.
CAF20_GASNET = ConduitProfile(
    name="caf2.0-gasnet",
    remote_overhead=3.0e-6,
    local_overhead=7.8e-6,
    loopback_penalty=3.5e-6,
    serialize_overhead=True,
    loopback_bw_factor=0.4,
)

#: A tuned native MPI stack (MVAPICH / Open MPI over verbs): two-sided,
#: moderate per-message software cost on both ends, shared-memory BTL for
#: same-node peers (so its local path is cheap — MPI was already
#: hierarchy-aware at the transport level, which is why the paper's flat
#: MPI barriers are far better than flat GASNet ones).
MPI_NATIVE = ConduitProfile(
    name="mpi-native",
    remote_overhead=1.3e-6,
    local_overhead=0.35e-6,
    loopback_penalty=0.25e-6,
    serialize_overhead=False,
    recv_overhead=0.5e-6,
)

#: Effective DGEMM efficiency (fraction of the 8.8 GFLOP/s per-core peak)
#: by compiler backend.  The paper's HPL builds use -O3 loop nests, not a
#: vendor BLAS, so rates are a few percent of peak; the values are
#: calibrated from Figure 1's 256-core points (OpenUH-generated code
#: reached 95 GFLOP/s where the GFortran backend reached 29.48, a ~3.2×
#: code-quality gap; the untuned GCC+Open MPI build sits in between).
BACKEND_EFFICIENCY = {
    "openuh": 0.10,
    "gfortran": 0.031,
    "gcc-mpi": 0.085,
}
