"""Sweep specs: the JSON job unit the experiment-grid server executes.

A **sweep spec** describes one experiment grid as data — the same grids
the ``repro.bench`` and ``repro.verify`` CLIs run, serialized so they
can travel over HTTP and be expanded *server-side* into independent,
cacheable cells:

``kind: "bench"`` — a §6 microbenchmark sweep::

    {"kind": "bench", "experiment": "barrier",      # barrier|reduce|broadcast
     "nodes": [2, 8, 16, 44],                        # node counts to sweep
     "ipn": 8,                                       # images per node
     "nelems": [1, 1024]}                            # payload bands
                                                     # (int or list of ints)

``kind: "verify"`` — a conformance-matrix run::

    {"kind": "verify", "quick": true, "seeds": 3,
     "kinds": ["barrier"], "algs": null, "shapes": ["2x4"]}

Every spec may carry ``"tenant": "<name>"`` for the server's per-tenant
accounting (the ``X-Tenant`` header wins when both are present).

:func:`expand` validates a spec and returns an :class:`ExpandedSpec`:
the deterministic ordered cell list (each cell a picklable
:class:`~repro.exec.task.TaskSpec` — the *same* TaskSpec the sequential
CLI would build, so cache keys are shared between CLI ``-j`` runs and
the server), a ``summarize`` hook that shrinks a cell value to the
JSON-safe record streamed to clients, and a ``render`` hook that folds
ordered outcomes back into output byte-identical to the sequential CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..bench.cells import EXPERIMENTS, plan_experiment, plan_tasks, render_results
from ..exec.task import TaskSpec

__all__ = ["SpecError", "Cell", "ExpandedSpec", "expand", "outcome_shims"]


class SpecError(ValueError):
    """The spec is malformed; the server answers 400 with the message."""


@dataclass(frozen=True)
class Cell:
    """One independent grid cell, in the spec's deterministic order."""

    index: int
    series: str
    label: str
    task: TaskSpec


@dataclass
class _Shim:
    """Outcome triple with the attribute shape table assembly expects."""

    ok: bool
    value: Any = None
    error: Optional[str] = None


def outcome_shims(outcomes: Sequence[dict]) -> List[_Shim]:
    """JSON cell records (``ok``/``value``/``error`` keys, index order)
    as objects :func:`repro.bench.cells.render_results` accepts."""
    return [_Shim(ok=bool(o.get("ok")), value=o.get("value"),
                  error=o.get("error")) for o in outcomes]


class ExpandedSpec:
    """A validated spec: ordered cells plus serialization/rendering."""

    kind: str
    cells: List[Cell]

    def summarize(self, value: Any) -> Any:
        """Shrink a cell's computed value to a JSON-safe record."""
        raise NotImplementedError

    def render(self, outcomes: Sequence[dict]) -> str:
        """Ordered JSON cell records → the sequential CLI's output."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def _require_int(spec: dict, field: str, default: int, lo: int = 1) -> int:
    value = spec.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < lo:
        raise SpecError(f"{field!r} must be an integer >= {lo}, got {value!r}")
    return value


def _int_list(spec: dict, field: str, default: List[int]) -> List[int]:
    value = spec.get(field, default)
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(v, int) and not isinstance(v, bool)
                       and v >= 1 for v in value)):
        raise SpecError(f"{field!r} must be a positive integer or a "
                        f"non-empty list of them, got {spec.get(field)!r}")
    return value


class BenchExpansion(ExpandedSpec):
    kind = "bench"

    def __init__(self, spec: dict):
        experiment = spec.get("experiment")
        if experiment not in EXPERIMENTS:
            raise SpecError(f"'experiment' must be one of {EXPERIMENTS}, "
                            f"got {experiment!r}")
        nodes = _int_list(spec, "nodes", [2, 8, 16, 44])
        ipn = _require_int(spec, "ipn", 8)
        bands = _int_list(spec, "nelems", [1])
        if experiment == "barrier" and len(bands) > 1:
            raise SpecError("'barrier' has no payload axis; "
                            "'nelems' must be a single value")
        self.experiment = experiment
        #: one plan list per payload band, in band order
        self.plans = [plan for band in bands
                      for plan in plan_experiment(experiment, nodes,
                                                  ipn=ipn, nelems=band)]
        tasks = plan_tasks(self.plans)
        self.cells = []
        index = 0
        for plan in self.plans:
            for name, _fn in plan.systems:
                for images, n in plan.configs:
                    self.cells.append(Cell(index=index, series=name,
                                           label=f"{images}({n})",
                                           task=tasks[index]))
                    index += 1

    def summarize(self, value: Any) -> Any:
        return float(value)

    def render(self, outcomes: Sequence[dict]) -> str:
        return render_results(self.plans, outcome_shims(outcomes))


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def _name_list(spec: dict, field: str) -> Optional[List[str]]:
    value = spec.get(field)
    if value is None:
        return None
    if (not isinstance(value, list)
            or not all(isinstance(v, str) for v in value)):
        raise SpecError(f"{field!r} must be a list of strings or null, "
                        f"got {value!r}")
    return value


class VerifyExpansion(ExpandedSpec):
    kind = "verify"

    def __init__(self, spec: dict):
        from ..verify.conformance import build_matrix, run_case

        seeds = _require_int(spec, "seeds", 3)
        quick = bool(spec.get("quick", False))
        kinds = _name_list(spec, "kinds")
        algs = _name_list(spec, "algs")
        shapes = _name_list(spec, "shapes")
        cases = build_matrix(quick=quick, kinds=kinds, algs=algs,
                             shapes=shapes)
        if not cases:
            raise SpecError("no conformance cases match the given filters")
        self.seeds = seeds
        self.cases = cases
        self.cells = [
            Cell(index=i, series=f"{case.kind}/{case.alg}", label=case.label,
                 task=TaskSpec(run_case, (case,), {"seeds": seeds},
                               label=case.label))
            for i, case in enumerate(cases)
        ]

    def summarize(self, value: Any) -> Any:
        # value is a repro.verify.conformance.CaseResult; the fuzz
        # report inside it is neither JSON- nor wire-friendly.
        return {"ok": bool(value.ok), "seeds": int(value.seeds),
                "detail": str(value.detail)}

    def render(self, outcomes: Sequence[dict]) -> str:
        lines = []
        passed = 0
        for cell, outcome in zip(self.cells, outcomes):
            value = outcome.get("value") or {}
            ok = bool(outcome.get("ok")) and bool(value.get("ok"))
            if ok:
                passed += 1
            else:
                detail = (outcome.get("error")
                          or value.get("detail") or "failed")
                lines.append(f"  {cell.label:<58} FAIL")
                for dline in str(detail).splitlines():
                    lines.append(f"    {dline}")
        lines.append(f"{passed}/{len(self.cells)} case(s) passed")
        return "\n".join(lines)


# ----------------------------------------------------------------------
_KINDS = {"bench": BenchExpansion, "verify": VerifyExpansion}


def expand(spec: Any) -> ExpandedSpec:
    """Validate ``spec`` (a decoded-JSON dict) and expand its cells."""
    if not isinstance(spec, dict):
        raise SpecError(f"spec must be a JSON object, got "
                        f"{type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in _KINDS:
        raise SpecError(f"'kind' must be one of {sorted(_KINDS)}, "
                        f"got {kind!r}")
    return _KINDS[kind](spec)
