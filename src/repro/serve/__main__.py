"""CLI entry point: ``python -m repro.serve``.

Subcommands::

    serve      run a job server in the foreground (prints the bound
               address, serves until POST /shutdown or Ctrl-C)
    submit     POST a spec file (or stdin) and stream it to completion,
               printing the rendered table the server produced
    stats      pretty-print GET /stats
    shutdown   POST /shutdown

``serve`` owns one shared worker pool and one result cache namespace;
every ``--server`` client of ``repro.bench`` / ``repro.verify`` and
every ``submit`` here multiplexes onto it.  See ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..exec.cache import DEFAULT_CACHE_DIR
from .client import (
    ServerError,
    get_job,
    get_stats,
    run_job,
    shutdown_server,
)
from .server import serve_forever

_DEFAULT_SERVER = "http://127.0.0.1:8750"


def _cmd_serve(args) -> int:
    max_bytes = (int(args.max_cache_mb * 1024 * 1024)
                 if args.max_cache_mb else None)
    try:
        asyncio.run(serve_forever(
            host=args.host, port=args.port, jobs=args.jobs,
            cache_root=args.cache_dir, namespace=args.namespace,
            max_cache_bytes=max_bytes, evict_interval=args.evict_interval,
            task_timeout=args.task_timeout,
            announce=lambda msg: print(msg, flush=True),
        ))
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    if args.spec == "-":
        raw = sys.stdin.read()
    else:
        with open(args.spec) as fh:
            raw = fh.read()
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"bad spec JSON: {exc}", file=sys.stderr)
        return 2

    def on_event(event: dict) -> None:
        if not args.verbose:
            return
        if event.get("event") == "cell":
            status = ("cached" if event.get("cached")
                      else "deduped" if event.get("deduped")
                      else "ok" if event.get("ok") else "FAIL")
            print(f"  cell {event['index']:>3} {event['series']} "
                  f"{event['label']:<12} {status}", file=sys.stderr)

    try:
        records = run_job(args.server, spec, tenant=args.tenant,
                          on_event=on_event)
    except (ServerError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    job_id = records[0]["job"] if records else None
    if job_id is not None:
        snapshot = get_job(args.server, job_id)
        print(snapshot.get("table", ""))
    failed = sum(1 for r in records if not r.get("ok"))
    return 1 if failed else 0


def _cmd_stats(args) -> int:
    try:
        print(json.dumps(get_stats(args.server), indent=2))
    except (ServerError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_shutdown(args) -> int:
    try:
        shutdown_server(args.server)
    except (ServerError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("server shutting down")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="multi-tenant experiment-grid job server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run a job server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8750,
                         help="TCP port (0 = pick a free one; the bound "
                              "address is printed)")
    p_serve.add_argument("-j", "--jobs", default=None,
                         help="worker processes: an integer or 'auto' "
                              "(default: REPRO_JOBS env, else 1)")
    p_serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"result-cache root (default: "
                              f"{DEFAULT_CACHE_DIR})")
    p_serve.add_argument("--namespace", default="serve",
                         help="cache namespace (default: serve)")
    p_serve.add_argument("--max-cache-mb", type=float, default=None,
                         help="evict oldest entries past this bound "
                              "(default: unbounded)")
    p_serve.add_argument("--evict-interval", type=int, default=64,
                         help="run eviction every N cache writes "
                              "(default: 64)")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         help="kill any single cell after this many "
                              "seconds (default: none)")
    p_serve.set_defaults(fn=_cmd_serve)

    for name, fn, desc in (
            ("submit", _cmd_submit, "submit a spec and stream it"),
            ("stats", _cmd_stats, "print server statistics"),
            ("shutdown", _cmd_shutdown, "stop the server")):
        p = sub.add_parser(name, help=desc)
        p.add_argument("--server", default=_DEFAULT_SERVER,
                       help=f"server URL (default: {_DEFAULT_SERVER})")
        if name == "submit":
            p.add_argument("--spec", required=True,
                           help="path to a JSON spec file, or '-' for stdin")
            p.add_argument("--tenant", default=None,
                           help="tenant name (default: local username)")
            p.add_argument("-v", "--verbose", action="store_true",
                           help="print each cell as it lands")
        p.set_defaults(fn=fn)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
