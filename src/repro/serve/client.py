"""Thin stdlib HTTP client for the experiment-grid job server.

The bench/verify CLIs use this to delegate a sweep: submit the spec,
consume the NDJSON stream into an index-ordered outcome list, and hand
back objects the *local* table-assembly code accepts — so the printed
output is byte-identical whether the cells ran in-process or on the
server (shared with who knows how many other tenants).

Everything here is synchronous ``http.client``; the server end is the
asyncio side.
"""

from __future__ import annotations

import getpass
import http.client
import json
import time
import urllib.parse
from typing import Callable, List, Optional, Tuple

from .spec import outcome_shims

__all__ = [
    "ServerError",
    "submit_job",
    "stream_job",
    "get_job",
    "get_stats",
    "shutdown_server",
    "wait_server",
    "run_job",
    "run_bench_remote",
    "run_verify_remote",
]

_DEFAULT_TIMEOUT = 600.0


class ServerError(RuntimeError):
    """The server answered with an error, or a job failed server-side."""


def _split(server: str) -> Tuple[str, int]:
    parsed = urllib.parse.urlparse(
        server if "//" in server else f"http://{server}")
    if not parsed.hostname:
        raise ServerError(f"bad server URL: {server!r}")
    return parsed.hostname, parsed.port or 8750


def _request(server: str, method: str, path: str, body: Optional[dict] = None,
             headers: Optional[dict] = None,
             timeout: float = _DEFAULT_TIMEOUT) -> dict:
    host, port = _split(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        data = response.read()
        try:
            parsed = json.loads(data.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServerError(f"{method} {path}: non-JSON response "
                              f"(HTTP {response.status})")
        if response.status >= 400:
            detail = (parsed or {}).get("error", data.decode(errors="replace"))
            raise ServerError(f"{method} {path}: HTTP {response.status}: "
                              f"{detail}")
        return parsed
    finally:
        conn.close()


# ----------------------------------------------------------------------
# one call per route
# ----------------------------------------------------------------------
def submit_job(server: str, spec: dict,
               tenant: Optional[str] = None) -> dict:
    """POST the spec; returns ``{"job": id, "cells": N, ...}``."""
    headers = {"X-Tenant": tenant} if tenant else {}
    return _request(server, "POST", "/jobs", body=spec, headers=headers)


def stream_job(server: str, job_id: str,
               timeout: float = _DEFAULT_TIMEOUT):
    """Yield each NDJSON event of ``GET /jobs/<id>/stream`` as a dict."""
    host, port = _split(server)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/stream")
        response = conn.getresponse()
        if response.status >= 400:
            raise ServerError(f"stream {job_id}: HTTP {response.status}: "
                              f"{response.read().decode(errors='replace')}")
        for raw in response:
            line = raw.strip()
            if line:
                yield json.loads(line.decode())
    finally:
        conn.close()


def get_job(server: str, job_id: str) -> dict:
    return _request(server, "GET", f"/jobs/{job_id}")


def get_stats(server: str) -> dict:
    return _request(server, "GET", "/stats")


def shutdown_server(server: str) -> dict:
    return _request(server, "POST", "/shutdown")


def wait_server(server: str, timeout: float = 20.0,
                interval: float = 0.1) -> bool:
    """Poll ``/healthz`` until the server answers (True) or we give up."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _request(server, "GET", "/healthz", timeout=2.0).get("ok"):
                return True
        except (ServerError, OSError):
            pass
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# whole-job round trips
# ----------------------------------------------------------------------
def run_job(server: str, spec: dict, tenant: Optional[str] = None,
            on_event: Optional[Callable[[dict], None]] = None) -> List[dict]:
    """Submit ``spec``, stream it to completion, and return the cell
    records sorted back into submission (index) order.

    The stream delivers cells in *landing* order — whatever the shared
    pool finished first, possibly interleaved with other tenants' work —
    so this is where the deterministic order is restored.  Raises
    :class:`ServerError` if the job (not just a cell) fails.
    """
    accepted = submit_job(server, spec, tenant=tenant)
    job_id = accepted["job"]
    cells: List[Optional[dict]] = [None] * int(accepted["cells"])
    done: Optional[dict] = None
    for event in stream_job(server, job_id):
        if on_event is not None:
            on_event(event)
        if event.get("event") == "cell":
            cells[event["index"]] = event
        elif event.get("event") == "done":
            done = event
    if done is None:
        raise ServerError(f"job {job_id}: stream ended without a done event")
    if done.get("status") != "done":
        raise ServerError(f"job {job_id}: {done.get('status')}: "
                          f"{done.get('error', 'unknown error')}")
    missing = [i for i, c in enumerate(cells) if c is None]
    if missing:
        raise ServerError(f"job {job_id}: cells never landed: {missing}")
    return cells  # type: ignore[return-value]


def _default_tenant(spec: dict, tenant: Optional[str]) -> Optional[str]:
    if tenant or spec.get("tenant"):
        return tenant
    try:
        return getpass.getuser()
    except OSError:
        return None


def run_bench_remote(server: str, spec: dict,
                     tenant: Optional[str] = None):
    """Run a bench spec remotely; returns index-ordered outcome objects
    accepted by :func:`repro.bench.cells.render_results` — the caller
    renders locally, byte-identical to a sequential run."""
    records = run_job(server, spec, tenant=_default_tenant(spec, tenant))
    return outcome_shims(records)


def run_verify_remote(server: str, spec: dict,
                      tenant: Optional[str] = None) -> Tuple[int, int, List[dict]]:
    """Run a verify spec remotely; returns ``(passed, total, records)``
    where records are the index-ordered cell dicts."""
    records = run_job(server, spec, tenant=_default_tenant(spec, tenant))
    passed = sum(1 for r in records
                 if r.get("ok") and (r.get("value") or {}).get("ok"))
    return passed, len(records), records
