"""Job registry, per-tenant accounting, and the in-flight dedup index.

A **job** is one tenant's submitted sweep spec: its expanded cells, the
per-cell outcome records as they land, and the set of live stream
subscribers.  The **registry** owns every job plus the per-tenant
counters surfaced at ``/stats``.

The **in-flight index** is what makes the server multi-tenant in more
than name: one :class:`asyncio.Future` per cache key currently
executing.  A second tenant whose grid overlaps the first's *awaits the
same future* instead of re-running the cell — N overlapping jobs cost
one execution per unique cell, and everyone's stream gets the value the
moment it lands.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spec import ExpandedSpec

__all__ = ["TenantStats", "Job", "JobRegistry", "InFlightIndex"]


@dataclass
class TenantStats:
    """Counters for one tenant, reported at ``/stats``."""

    jobs: int = 0
    cells: int = 0
    #: cells this tenant's jobs actually sent to the worker pool
    executed: int = 0
    #: cells served from the on-disk result cache
    cache_hits: int = 0
    #: cells served by awaiting another request's in-flight execution
    deduped: int = 0
    failed: int = 0

    def as_dict(self) -> dict:
        return {"jobs": self.jobs, "cells": self.cells,
                "executed": self.executed, "cache_hits": self.cache_hits,
                "deduped": self.deduped, "failed": self.failed}


class Job:
    """One submitted spec: cells, landing-order events, subscribers."""

    def __init__(self, job_id: str, tenant: str, spec: dict,
                 expanded: ExpandedSpec):
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        self.expanded = expanded
        self.created = time.time()
        self.finished: Optional[float] = None
        self.status = "running"
        self.error: Optional[str] = None
        #: per-cell JSON records, indexed by cell index (None = pending)
        self.outcomes: List[Optional[dict]] = [None] * len(expanded.cells)
        #: the same records in landing order (what streams replay)
        self.events: List[dict] = []
        self._subscribers: List[asyncio.Queue] = []

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o is not None)

    def record(self, outcome: dict) -> None:
        """A cell landed: remember it and wake every stream."""
        self.outcomes[outcome["index"]] = outcome
        self.events.append(outcome)
        for q in self._subscribers:
            q.put_nowait(outcome)

    def finish(self, error: Optional[str] = None) -> None:
        self.finished = time.time()
        self.status = "failed" if error else "done"
        self.error = error
        done = self.done_event()
        self.events.append(done)
        for q in self._subscribers:
            q.put_nowait(done)
            q.put_nowait(None)  # end-of-stream sentinel
        self._subscribers = []

    def done_event(self) -> dict:
        out: Dict[str, Any] = {
            "event": "done", "job": self.id, "status": self.status,
            "cells": len(self.outcomes), "completed": self.completed,
            "failed_cells": sum(1 for o in self.outcomes
                                if o is not None and not o.get("ok")),
            "elapsed_s": round((self.finished or time.time())
                               - self.created, 6),
        }
        if self.error:
            out["error"] = self.error
        return out

    def subscribe(self) -> asyncio.Queue:
        """A queue replaying every past event, then live ones; ``None``
        terminates the stream."""
        q: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            q.put_nowait(event)
        if self.status != "running":
            q.put_nowait(None)
        else:
            self._subscribers.append(q)
        return q

    def snapshot(self) -> dict:
        """The ``GET /jobs/<id>`` view (adds the final table when done)."""
        out = {
            "job": self.id, "tenant": self.tenant, "status": self.status,
            "kind": self.expanded.kind, "cells": len(self.outcomes),
            "completed": self.completed, "created": self.created,
        }
        if self.error:
            out["error"] = self.error
        if self.status == "done":
            out["table"] = self.expanded.render(self.outcomes)
        return out


class JobRegistry:
    """Every job the server has accepted, plus per-tenant counters."""

    def __init__(self):
        self._ids = itertools.count(1)
        self.jobs: Dict[str, Job] = {}
        self.tenants: Dict[str, TenantStats] = {}

    def create(self, tenant: str, spec: dict, expanded: ExpandedSpec) -> Job:
        job = Job(f"j{next(self._ids):06d}", tenant, spec, expanded)
        self.jobs[job.id] = job
        stats = self.tenants.setdefault(tenant, TenantStats())
        stats.jobs += 1
        stats.cells += len(expanded.cells)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def stats(self) -> dict:
        active = sum(1 for j in self.jobs.values() if j.status == "running")
        return {
            "total": len(self.jobs),
            "active": active,
            "tenants": {name: s.as_dict()
                        for name, s in sorted(self.tenants.items())},
        }


@dataclass
class _InFlight:
    future: asyncio.Future
    #: requests currently awaiting this execution beyond the one that
    #: started it (observability only)
    waiters: int = 0


class InFlightIndex:
    """Cache key → the future of its single in-flight execution."""

    def __init__(self):
        self._flights: Dict[str, _InFlight] = {}
        #: total cell requests served by awaiting an existing flight
        self.deduped = 0

    def __len__(self) -> int:
        return len(self._flights)

    def lookup(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``key``, counting the caller as a
        dedup'd waiter; None when nothing is in flight."""
        flight = self._flights.get(key)
        if flight is None:
            return None
        flight.waiters += 1
        self.deduped += 1
        return flight.future

    def begin(self, key: str) -> asyncio.Future:
        """Claim ``key``: the caller is the one executing it."""
        assert key not in self._flights, f"duplicate flight for {key[:12]}"
        future = asyncio.get_running_loop().create_future()
        self._flights[key] = _InFlight(future=future)
        return future

    def settle(self, key: str, result: Any) -> None:
        """Publish the result and retire the flight.  The index entry is
        removed *before* the future resolves, and the caller stores the
        value in the cache *before* calling this — so a request arriving
        at any instant sees either the flight or the cached entry, never
        a gap that would double-execute."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_result(result)
