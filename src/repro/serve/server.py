"""The experiment-grid job server: asyncio HTTP over a shared pool.

One process serves every tenant:

* ``POST /jobs`` — submit a sweep spec (JSON; see
  :mod:`repro.serve.spec`).  The server expands it into cells and
  answers ``{"job": id, "cells": N}`` immediately; cells execute in the
  background.
* ``GET /jobs/<id>/stream`` — NDJSON stream: one record per cell *as it
  lands* (out of submission order, each tagged with its ``index``),
  then a final ``{"event": "done", ...}`` record.
* ``GET /jobs/<id>`` — job snapshot; once done it includes ``table``,
  the rendered output byte-identical to the sequential CLI's.
* ``GET /stats`` — pool, cache, dedup, and per-tenant counters.
* ``GET /healthz`` — liveness; ``POST /shutdown`` — graceful stop.

Each cell takes the cheapest path that can serve it: the **in-flight
index** (another tenant is computing it right now — await their future),
the **result cache** (same task + same source fingerprint executed any
time in the past), and only then the shared
:class:`~repro.exec.shared.SharedPoolExecutor`, where cells from every
concurrent job interleave across one warm worker pool.  After every
``evict_interval`` cache writes the server sweeps the store —
superseded source generations first, then oldest entries — so a
long-lived server under ``--max-cache-mb`` never grows without bound
even as the source tree churns underneath it.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, stdlib only): the clients are the bench/verify CLIs and
``curl``, not browsers.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional, Sequence

from ..exec.cache import DEFAULT_CACHE_DIR, ResultCache
from ..exec.shared import SharedPoolExecutor
from .jobs import InFlightIndex, Job, JobRegistry
from .spec import Cell, SpecError, expand

__all__ = ["JobServer", "serve_forever"]

_MAX_BODY = 8 * 1024 * 1024


class JobServer:
    """State and request handling; :func:`serve_forever` runs it."""

    def __init__(
        self,
        jobs=None,
        *,
        cache_root=DEFAULT_CACHE_DIR,
        namespace: str = "serve",
        source_roots: Optional[Sequence] = None,
        max_cache_bytes: Optional[int] = None,
        evict_interval: int = 64,
        task_timeout: Optional[float] = None,
    ):
        self.executor = SharedPoolExecutor(jobs=jobs,
                                           task_timeout=task_timeout)
        self.cache = ResultCache(root=cache_root, namespace=namespace,
                                 source_roots=source_roots)
        self.registry = JobRegistry()
        self.inflight = InFlightIndex()
        self.max_cache_bytes = max_cache_bytes
        self.evict_interval = max(1, evict_interval)
        self.started = time.time()
        self.shutdown = asyncio.Event()
        self._puts_since_evict = 0
        self._last_evict: dict = {}

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 8750) -> asyncio.AbstractServer:
        return await asyncio.start_server(self._handle, host, port)

    def close(self) -> None:
        self.executor.close()

    # -- HTTP plumbing -------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = b""
            if 0 < length <= _MAX_BODY:
                body = await reader.readexactly(length)
            await self._route(method, target, headers, body, writer)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, obj,
                       status: int = 200) -> None:
        payload = (json.dumps(obj, indent=2) + "\n").encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload)
        await writer.drain()

    async def _route(self, method: str, target: str, headers: dict,
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        if target == "/healthz" and method == "GET":
            await self._respond(writer, {"ok": True,
                                         "uptime_s": round(
                                             time.time() - self.started, 3)})
        elif target == "/stats" and method == "GET":
            await self._respond(writer, self.stats())
        elif target == "/jobs" and method == "POST":
            await self._post_job(headers, body, writer)
        elif target.startswith("/jobs/"):
            rest = target[len("/jobs/"):]
            if rest.endswith("/stream") and method == "GET":
                await self._stream_job(rest[:-len("/stream")], writer)
            elif method == "GET":
                job = self.registry.get(rest)
                if job is None:
                    await self._respond(writer,
                                        {"error": f"no job {rest!r}"}, 404)
                else:
                    await self._respond(writer, job.snapshot())
            else:
                await self._respond(writer, {"error": "method"}, 405)
        elif target == "/shutdown" and method == "POST":
            await self._respond(writer, {"ok": True, "shutting_down": True})
            self.shutdown.set()
        else:
            await self._respond(
                writer, {"error": f"no route {method} {target}"}, 404)

    # -- routes --------------------------------------------------------
    async def _post_job(self, headers: dict, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        try:
            spec = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, {"error": f"bad JSON: {exc}"}, 400)
            return
        try:
            expanded = expand(spec)
        except SpecError as exc:
            await self._respond(writer, {"error": str(exc)}, 400)
            return
        tenant = (headers.get("x-tenant")
                  or (spec.get("tenant") if isinstance(spec, dict) else None)
                  or "anon")
        job = self.registry.create(str(tenant), spec, expanded)
        asyncio.get_running_loop().create_task(self._run_job(job))
        await self._respond(writer, {
            "job": job.id, "tenant": job.tenant, "kind": expanded.kind,
            "cells": len(expanded.cells),
        })

    async def _stream_job(self, job_id: str,
                          writer: asyncio.StreamWriter) -> None:
        job = self.registry.get(job_id)
        if job is None:
            await self._respond(writer, {"error": f"no job {job_id!r}"}, 404)
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        queue = job.subscribe()
        while True:
            event = await queue.get()
            if event is None:
                break
            writer.write((json.dumps(event) + "\n").encode())
            await writer.drain()

    # -- execution -----------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        try:
            await asyncio.gather(*(self._run_cell(job, cell)
                                   for cell in job.expanded.cells))
            job.finish()
        except Exception as exc:  # noqa: BLE001 — the job fails, not the server
            job.finish(error=f"{type(exc).__name__}: {exc}")

    async def _run_cell(self, job: Job, cell: Cell) -> None:
        tenant = self.registry.tenants[job.tenant]
        outcome = {"event": "cell", "job": job.id, "index": cell.index,
                   "series": cell.series, "label": cell.label,
                   "ok": False, "value": None, "error": None,
                   "cached": False, "deduped": False, "wall_s": 0.0}
        key = self.cache.task_key(cell.task)
        if key is None:
            ok, value, error, wall = await self._execute(cell)
            tenant.executed += 1
        else:
            flight = self.inflight.lookup(key)
            if flight is not None:
                ok, value, error, wall = await flight
                outcome["deduped"] = True
                tenant.deduped += 1
            else:
                hit, value = self.cache.get(key)
                if hit:
                    ok, error, wall = True, None, 0.0
                    outcome["cached"] = True
                    tenant.cache_hits += 1
                else:
                    future = self.inflight.begin(key)
                    try:
                        ok, value, error, wall = await self._execute(cell)
                        tenant.executed += 1
                        if ok:
                            self.cache.put(key, value)
                            self._maybe_evict()
                    finally:
                        # Settle even on failure so waiters see the
                        # error instead of hanging; errors are not
                        # cached, so a later request re-executes.
                        self.inflight.settle(
                            key, (ok, value, error, wall)
                            if not isinstance(value, BaseException)
                            else (False, None, str(value), 0.0))
        outcome["ok"] = ok
        outcome["error"] = error
        outcome["wall_s"] = round(wall, 6)
        if ok:
            outcome["value"] = job.expanded.summarize(value)
        else:
            tenant.failed += 1
        job.record(outcome)

    async def _execute(self, cell: Cell):
        """Run one cell on the shared pool; returns (ok, value, error,
        wall_s) and never raises for per-cell failures."""
        try:
            result = await asyncio.wrap_future(
                self.executor.submit(cell.task))
        except Exception as exc:  # noqa: BLE001 — executor-level failure
            return False, None, f"{type(exc).__name__}: {exc}", 0.0
        return result.ok, result.value, result.error, result.wall_s

    def _maybe_evict(self) -> None:
        self._puts_since_evict += 1
        if self._puts_since_evict < self.evict_interval:
            return
        self._puts_since_evict = 0
        self._last_evict = self.cache.evict(max_bytes=self.max_cache_bytes)

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "pool": self.executor.stats(),
            "cache": {
                **self.cache.stats(),
                "entries": self.cache.entry_count(),
                "total_bytes": self.cache.total_bytes(),
                "max_bytes": self.max_cache_bytes,
                "generation": self.cache.generation(),
                "last_evict": self._last_evict,
            },
            "inflight": {"open": len(self.inflight),
                         "deduped": self.inflight.deduped},
            "jobs": self.registry.stats(),
        }


async def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8750,
    announce=None,
    **kwargs,
) -> None:
    """Run a :class:`JobServer` until ``POST /shutdown`` (or cancel)."""
    app = JobServer(**kwargs)
    server = await app.start(host, port)
    try:
        if announce is not None:
            bound = server.sockets[0].getsockname()
            announce(f"serving on http://{bound[0]}:{bound[1]}")
        await app.shutdown.wait()
    finally:
        server.close()
        await server.wait_closed()
        app.close()
