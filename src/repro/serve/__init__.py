"""Persistent multi-tenant experiment-grid server.

``repro.serve`` turns the bench/verify CLIs into thin clients of one
long-lived process that owns the worker pool and the result cache:

* **specs** (:mod:`repro.serve.spec`) — sweep grids as JSON, expanded
  server-side into the exact :class:`~repro.exec.task.TaskSpec` cells a
  sequential CLI run would build (shared cache keys, shared rendering);
* **jobs** (:mod:`repro.serve.jobs`) — per-submission state, NDJSON
  event streams, per-tenant counters, and the in-flight dedup index
  that lets N overlapping jobs pay for one execution per unique cell;
* **server** (:mod:`repro.serve.server`) — the asyncio HTTP front end
  plus the per-cell flow (in-flight → cache → shared pool) and
  periodic cache eviction;
* **client** (:mod:`repro.serve.client`) — the synchronous stdlib
  client the CLIs use via ``--server URL``.

Command line::

    python -m repro.serve serve --port 8750 -j 4   # run a server
    python -m repro.serve submit --server http://127.0.0.1:8750 \\
        --spec sweep.json                          # submit + stream
    python -m repro.serve stats --server ...       # pool/cache/tenants
    python -m repro.serve shutdown --server ...    # graceful stop

See ``docs/serving.md`` for the HTTP API, the spec schema, and the
dedup + eviction semantics.
"""

from .client import (
    ServerError,
    get_job,
    get_stats,
    run_bench_remote,
    run_job,
    run_verify_remote,
    shutdown_server,
    stream_job,
    submit_job,
    wait_server,
)
from .jobs import InFlightIndex, Job, JobRegistry, TenantStats
from .server import JobServer, serve_forever
from .spec import Cell, ExpandedSpec, SpecError, expand

__all__ = [
    "ServerError",
    "get_job",
    "get_stats",
    "run_bench_remote",
    "run_job",
    "run_verify_remote",
    "shutdown_server",
    "stream_job",
    "submit_job",
    "wait_server",
    "InFlightIndex",
    "Job",
    "JobRegistry",
    "TenantStats",
    "JobServer",
    "serve_forever",
    "Cell",
    "ExpandedSpec",
    "SpecError",
    "expand",
]
