"""Rice CAF 2.0 comparator: first-class teams, flat collectives.

CAF 2.0 [Mellor-Crummey et al., PGAS'09] had teams from inception but no
memory-hierarchy information (§VI of the paper).  Its barrier is the
two-sync-array dissemination of Mellor-Crummey & Scott (Algorithm 9);
its collectives are flat binomial trees; its source-to-source
compilation (ROSE front-end, GFortran or OpenUH as backend) adds glue
cost on every runtime call and — with the GFortran backend — markedly
poorer generated compute code, which is why Figure 1 shows 29.48 vs 80
GFLOP/s for the two backends.

The model lives in the conduit profile
:data:`repro.calibration.CAF20_GASNET` plus the two configs re-exported
here; the two-array barrier itself is
:func:`repro.collectives.barrier.barrier_dissemination_mcs`.
"""

from __future__ import annotations

from ..calibration import CAF20_GASNET, ConduitProfile
from ..runtime.config import CAF20_GFORTRAN, CAF20_OPENUH, RuntimeConfig

__all__ = ["PROFILE", "OPENUH_BACKEND", "GFORTRAN_BACKEND"]

#: CAF 2.0's conduit: GASNet plus source-to-source dispatch glue
PROFILE: ConduitProfile = CAF20_GASNET
#: CAF 2.0 compiled with OpenUH as the backend Fortran compiler
OPENUH_BACKEND: RuntimeConfig = CAF20_OPENUH
#: CAF 2.0 compiled with GFortran 4.4.7 (the paper's default backend)
GFORTRAN_BACKEND: RuntimeConfig = CAF20_GFORTRAN
