"""Comparator stacks the paper evaluates against: GASNet conduits,
Rice CAF 2.0, and a miniature MPI with three collective tunings."""

from . import caf20, gasnet
from .mpi import MPI_TUNINGS, Communicator, MpiContext, MpiWorld, run_mpi

__all__ = [
    "caf20",
    "gasnet",
    "run_mpi",
    "MpiWorld",
    "MpiContext",
    "Communicator",
    "MPI_TUNINGS",
]
