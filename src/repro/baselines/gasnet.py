"""GASNet conduit models: the communication layers under UHCAF and CAF 2.0.

The paper's §V-A compares barriers over two GASNet-provided paths:

* **GASNet RDMA dissemination** — dissemination implemented with GASNet
  put operations.  GASNet 1.22's ibv conduit routes every put through a
  per-node progress engine (HCA lock + completion-queue reaping), and —
  without PSHM — loops same-node puts through the Active-Message path,
  where delivery waits on the target's poll.  Modeled by
  :data:`repro.calibration.GASNET_RDMA` (``serialize_overhead=True``,
  large ``local_overhead``/``loopback_penalty``).
* **GASNet IB dissemination** — the same algorithm implemented directly
  on the InfiniBand verbs GASNet exposes: per-image queue pairs, no
  shared progress engine, a thin software path.  Modeled by
  :data:`repro.calibration.IB_VERBS`.

This module exposes the two profiles and helpers for building runtime
configs over them, so benchmark code reads ``gasnet.RDMA`` instead of
reaching into calibration constants.
"""

from __future__ import annotations

from ..calibration import GASNET_RDMA, IB_VERBS, ConduitProfile
from ..runtime.config import RuntimeConfig

__all__ = ["RDMA", "VERBS", "dissemination_over"]

#: the GASNet RDMA-put path (UHCAF's and CAF 2.0's transport)
RDMA: ConduitProfile = GASNET_RDMA
#: raw InfiniBand verbs (the low-level reference implementation)
VERBS: ConduitProfile = IB_VERBS


def dissemination_over(profile: ConduitProfile, name: str) -> RuntimeConfig:
    """A hierarchy-unaware, dissemination-everything stack over ``profile``
    — the §V-A comparison lines (1) and (2)."""
    return RuntimeConfig(
        name=name,
        conduit_profile=profile,
        hierarchy_aware=False,
        barrier="dissemination",
        reduce="binomial-flat",
        broadcast="binomial-flat",
        backend="openuh",
    )
