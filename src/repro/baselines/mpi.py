"""A miniature MPI on the simulated cluster — the paper's MPI comparators.

The paper benchmarks its collectives against MPI_Barrier (and friends)
from MVAPICH 2.0beta, default Open MPI 1.8.3, and Open MPI with its
hierarchy-awareness options (the ``hierarch`` and ``sm`` coll modules).
This module provides just enough of MPI to reproduce those lines,
running on the same :class:`~repro.machine.Machine` and cost model as
the CAF runtime:

* :class:`MpiWorld` / :func:`run_mpi` — SPMD launcher for rank programs.
* :class:`Communicator` — groups, ``split``, ``dup``; two-sided
  ``send``/``recv`` with (source, tag) matching over the MPI-native
  conduit profile (eager protocol; both sides pay software overhead,
  same-node pairs ride the shared-memory BTL).
* Collectives in three tunings (``mvapich``, ``openmpi``,
  ``openmpi-hierarch``): barrier, broadcast, allreduce.

Ranks are **0-based**, as in MPI; only the CAF side of the repo uses
Fortran's 1-based images.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..calibration import MPI_NATIVE, ConduitProfile
from ..machine import Machine, MachineSpec, build_machine, paper_cluster
from ..sim import Cell, Engine, Process, Timeout, Wait, WaitFor
from ..collectives.base import binomial_peers

__all__ = ["MpiWorld", "Communicator", "MpiContext", "MpiRequest",
           "run_mpi", "MPI_TUNINGS"]

MPI_TUNINGS = ("mvapich", "openmpi", "openmpi-hierarch")

#: pure synchronization message size
SYNC_NBYTES = 8


def _payload_nbytes(value: Any) -> int:
    nbytes = getattr(value, "nbytes", None)
    return int(nbytes) if nbytes is not None else 8


def _freeze(value: Any) -> Any:
    return value.copy() if isinstance(value, np.ndarray) else value


class MpiWorld:
    """Shared state of one MPI job: machine, conduit costs, match queues."""

    def __init__(self, machine: Machine, tuning: str = "openmpi",
                 profile: ConduitProfile = MPI_NATIVE):
        if tuning not in MPI_TUNINGS:
            raise ValueError(f"unknown MPI tuning {tuning!r}; have {MPI_TUNINGS}")
        self.machine = machine
        self.engine = machine.engine
        self.tuning = tuning
        self.profile = profile
        # Unexpected-message queues: (comm_id, dst_rank) → list of
        # (src_rank, tag, payload), plus an arrival counter to wake matchers.
        self._queues: Dict[Tuple[Any, int], List[Tuple[int, Any, Any]]] = {}
        self._arrivals: Dict[Tuple[Any, int], Cell] = {}

    # -- matching infrastructure ---------------------------------------
    def arrival_cell(self, comm_id: Any, rank: int) -> Cell:
        key = (comm_id, rank)
        cell = self._arrivals.get(key)
        if cell is None:
            cell = Cell(self.engine, 0, name=f"mpi.arrive[{comm_id},{rank}]")
            self._arrivals[key] = cell
        return cell

    def enqueue(self, comm_id: Any, dst: int, src: int, tag: Any, payload: Any) -> None:
        self._queues.setdefault((comm_id, dst), []).append((src, tag, payload))
        self.arrival_cell(comm_id, dst).add(1)

    def match(self, comm_id: Any, dst: int, src: Optional[int], tag: Any) -> Optional[Any]:
        """Pop the first queued message matching (src, tag); None-src and
        None-tag are wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG)."""
        queue = self._queues.get((comm_id, dst))
        if not queue:
            return None
        for i, (msrc, mtag, payload) in enumerate(queue):
            if (src is None or msrc == src) and (tag is None or mtag == tag):
                queue.pop(i)
                return (msrc, mtag, payload)
        return None


class Communicator:
    """An ordered group of global procs with its own message-matching space.

    ``comm_id`` must be identical at every member rank (message matching
    keys on it), so derived communicators compute it deterministically
    from the parent id and the split parameters rather than from a local
    counter — mirroring how real MPIs agree on context ids.
    """

    def __init__(self, world: MpiWorld, procs: Sequence[int], comm_id: Any = 0):
        if len(set(procs)) != len(procs):
            raise ValueError("duplicate procs in communicator group")
        self.world = world
        self.comm_id = comm_id
        self.procs = list(procs)
        self._rank_of = {p: r for r, p in enumerate(self.procs)}

    @property
    def size(self) -> int:
        return len(self.procs)

    def rank_of_proc(self, proc: int) -> int:
        try:
            return self._rank_of[proc]
        except KeyError:
            raise ValueError(f"proc {proc} not in communicator") from None


class MpiContext:
    """One rank's API handle (the ``comm`` argument of rank programs)."""

    def __init__(self, world: MpiWorld, proc: int, comm_world: Communicator):
        self.world = world
        self.proc = proc
        self.comm_world = comm_world
        # Per-rank, per-communicator collective sequence numbers: every
        # rank of a communicator issues collectives in the same order
        # (SPMD), so local counters agree and successive collectives get
        # distinct, matching tags.
        self._coll_seqs: Dict[Any, int] = {}

    def _next_coll_tag(self, comm: Communicator, kind: str) -> Tuple[str, int]:
        seq = self._coll_seqs.get(comm.comm_id, 0) + 1
        self._coll_seqs[comm.comm_id] = seq
        return (kind, seq)

    @property
    def now(self) -> float:
        return self.world.engine.now

    @property
    def machine(self):
        """The simulated machine (traffic counters etc.), mirroring
        :class:`~repro.runtime.program.CafContext` so benchmark bodies
        run unchanged on either stack."""
        return self.world.machine

    def rank(self, comm: Optional[Communicator] = None) -> int:
        comm = comm or self.comm_world
        return comm.rank_of_proc(self.proc)

    def size(self, comm: Optional[Communicator] = None) -> int:
        return (comm or self.comm_world).size

    # ------------------------------------------------------------------
    # Point-to-point (eager protocol)
    # ------------------------------------------------------------------
    def send(self, value: Any, dest: int, tag: Any = 0,
             comm: Optional[Communicator] = None):
        """Blocking-through-injection eager send (both sides pay software
        overhead; small messages never rendezvous)."""
        comm = comm or self.comm_world
        dst_proc = comm.procs[dest]
        world = self.world
        profile = world.profile
        payload = _freeze(value)
        nbytes = _payload_nbytes(value)
        same = world.machine.same_node(self.proc, dst_proc)
        overhead = profile.local_overhead if same else profile.remote_overhead
        yield Timeout(overhead)
        my_rank = comm.rank_of_proc(self.proc)

        def deliver() -> None:
            world.enqueue(comm.comm_id, dest, my_rank, tag, payload)

        if same:
            ps = world.machine.topology.placement(self.proc)
            pd = world.machine.topology.placement(dst_proc)
            yield from world.machine.shared_memory.transfer(
                ps.node, ps.core, pd.core, nbytes, on_visible=deliver
            )
        else:
            yield from world.machine.interconnect.send(
                world.machine.node_of(self.proc),
                world.machine.node_of(dst_proc),
                nbytes,
                on_delivered=deliver,
            )

    def recv(self, source: Optional[int] = None, tag: Any = None,
             comm: Optional[Communicator] = None):
        """Blocking receive; returns the payload.  Wildcards via None."""
        comm = comm or self.comm_world
        world = self.world
        my_rank = comm.rank_of_proc(self.proc)
        cell = world.arrival_cell(comm.comm_id, my_rank)
        while True:
            hit = world.match(comm.comm_id, my_rank, source, tag)
            if hit is not None:
                yield Timeout(world.profile.recv_overhead)
                return hit[2]
            seen = cell.value
            yield WaitFor(cell, lambda v, s=seen: v > s)

    def isend(self, value: Any, dest: int, tag: Any = 0,
              comm: Optional[Communicator] = None):
        """Non-blocking send: blocks only through posting (software
        overhead); injection and the wire proceed asynchronously.
        Generator returning a request; complete it with :meth:`wait`."""
        comm = comm or self.comm_world
        dst_proc = comm.procs[dest]
        world = self.world
        profile = world.profile
        payload = _freeze(value)
        nbytes = _payload_nbytes(value)
        same = world.machine.same_node(self.proc, dst_proc)
        yield Timeout(profile.local_overhead if same else profile.remote_overhead)
        my_rank = comm.rank_of_proc(self.proc)

        def deliver() -> None:
            world.enqueue(comm.comm_id, dest, my_rank, tag, payload)

        done = world.machine.transfer_async(
            self.proc, dst_proc, nbytes, on_delivered=deliver
        )
        return MpiRequest(kind="send", event=done)

    def irecv(self, source: Optional[int] = None, tag: Any = None,
              comm: Optional[Communicator] = None):
        """Non-blocking receive.  Simplification vs real MPI: matching
        happens at :meth:`wait` time rather than at message arrival, so
        two outstanding irecvs with overlapping wildcards may match in
        wait order instead of post order.  Generator (posts nothing but
        keeps the call style uniform); returns a request."""
        comm = comm or self.comm_world
        yield Timeout(0.0)
        return MpiRequest(kind="recv", event=None,
                          match=(comm, source, tag))

    def wait(self, request: "MpiRequest"):
        """Complete a non-blocking operation; returns the payload for
        receives, None for sends."""
        if request.kind == "send":
            yield Wait(request.event)
            return None
        comm, source, tag = request.match
        value = yield from self.recv(source, tag, comm)
        return value

    def waitall(self, requests: Sequence["MpiRequest"]):
        """Complete several requests; returns their results in order."""
        out = []
        for request in requests:
            out.append((yield from self.wait(request)))
        return out

    def sendrecv(self, value: Any, peer: int, tag: Any = 0,
                 comm: Optional[Communicator] = None):
        """Simultaneous exchange with ``peer`` (send first — both sides
        sending first is what makes the exchange deadlock-free here,
        since sends only block through injection)."""
        yield from self.send(value, peer, tag, comm)
        got = yield from self.recv(peer, tag, comm)
        return got

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int, key: int, comm: Optional[Communicator] = None):
        """MPI_Comm_split via gather-to-0 + broadcast of assignments (the
        classic implementation, costed accordingly)."""
        comm = comm or self.comm_world
        my_rank = comm.rank_of_proc(self.proc)
        tag = self._next_coll_tag(comm, "split")
        record = (my_rank, color, key)
        if my_rank != 0:
            yield from self.send(record, 0, tag, comm)
            new_group = yield from self.recv(0, (tag, "out"), comm)
        else:
            records = [record]
            for _ in range(comm.size - 1):
                rec = yield from self.recv(None, tag, comm)
                records.append(rec)
            groups: Dict[int, List[Tuple[int, int]]] = {}
            for rank, col, k in records:
                groups.setdefault(col, []).append((k, rank))
            assignment: Dict[int, List[int]] = {}
            for col, entries in groups.items():
                ranks = [r for _, r in sorted(entries)]
                for r in ranks:
                    assignment[r] = ranks
            for r in range(1, comm.size):
                yield from self.send(assignment[r], r, (tag, "out"), comm)
            new_group = assignment[0]
        new_id = (comm.comm_id, "split", tag[1], color)
        return Communicator(self.world, [comm.procs[r] for r in new_group], new_id)

    # ------------------------------------------------------------------
    # Collectives (tuning-dispatched)
    # ------------------------------------------------------------------
    def _node_groups(self, comm: Communicator) -> Tuple[List[int], Dict[int, int]]:
        """(leader ranks sorted, rank → leader rank) by physical node —
        what Open MPI's hierarch module computes at communicator setup."""
        by_node: Dict[int, List[int]] = {}
        for r, proc in enumerate(comm.procs):
            by_node.setdefault(self.world.machine.node_of(proc), []).append(r)
        leader_of: Dict[int, int] = {}
        leaders = []
        for node in sorted(by_node):
            ranks = sorted(by_node[node])
            leaders.append(ranks[0])
            for r in ranks:
                leader_of[r] = ranks[0]
        return leaders, leader_of

    def barrier(self, comm: Optional[Communicator] = None):
        """MPI_Barrier in the world's tuning: pairwise-exchange dissemination
        (mvapich), the default binomial fan-in/fan-out tree (openmpi, as in
        Open MPI 1.8 untuned), or the two-level sm+hierarch scheme
        (openmpi-hierarch)."""
        comm = comm or self.comm_world
        tag = self._next_coll_tag(comm, "barrier")
        tuning = self.world.tuning
        if tuning == "openmpi-hierarch":
            yield from self._barrier_hierarchical(comm, tag)
        elif tuning == "openmpi":
            ranks = list(range(comm.size))
            yield from self._barrier_tree(comm, ranks, tag)
        else:
            ranks = list(range(comm.size))
            yield from self._barrier_dissemination(comm, ranks, tag)

    def _barrier_tree(self, comm: Communicator, participants: List[int], tag) -> Any:
        """Binomial fan-in to rank 0 then fan-out: 2·log2(n) latency, the
        shape of Open MPI's default (coll basic/tuned untuned) barrier."""
        n = len(participants)
        if n <= 1:
            return
        me = comm.rank_of_proc(self.proc)
        vrank = participants.index(me)
        parent, children = binomial_peers(vrank, n)
        for child in sorted(children):
            yield from self.recv(participants[child], tag + ("up",), comm)
        if parent is not None:
            yield from self.send(0, participants[parent], tag + ("up",), comm)
            yield from self.recv(participants[parent], tag + ("down",), comm)
        for child in children:
            yield from self.send(0, participants[child], tag + ("down",), comm)

    def _barrier_dissemination(self, comm: Communicator,
                               participants: List[int], tag) -> Any:
        n = len(participants)
        if n <= 1:
            return
        me = comm.rank_of_proc(self.proc)
        pos = participants.index(me)
        rounds = math.ceil(math.log2(n))
        for r in range(rounds):
            dist = 1 << r
            to = participants[(pos + dist) % n]
            frm = participants[(pos - dist) % n]
            yield from self.send(0, to, tag + (r,), comm)
            yield from self.recv(frm, tag + (r,), comm)

    def _barrier_hierarchical(self, comm: Communicator, tag) -> Any:
        leaders, leader_of = self._node_groups(comm)
        me = comm.rank_of_proc(self.proc)
        my_leader = leader_of[me]
        if me != my_leader:
            yield from self.send(0, my_leader, tag + ("up",), comm)
            yield from self.recv(my_leader, tag + ("down",), comm)
            return
        locals_ = [r for r, l in leader_of.items() if l == me and r != me]
        for _ in locals_:
            yield from self.recv(None, tag + ("up",), comm)
        yield from self._barrier_dissemination(comm, leaders, tag + ("lead",))
        for r in sorted(locals_):
            yield from self.send(0, r, tag + ("down",), comm)

    def bcast(self, value: Any, root: int = 0,
              comm: Optional[Communicator] = None):
        """MPI_Bcast: binomial tree (flat tunings) or leader-then-local
        two-level tree (hierarch).  Returns the payload at every rank."""
        comm = comm or self.comm_world
        tag = self._next_coll_tag(comm, "bcast")
        if self.world.tuning == "openmpi-hierarch":
            result = yield from self._bcast_hierarchical(comm, value, root, tag)
        else:
            ranks = list(range(comm.size))
            result = yield from self._bcast_binomial(comm, ranks, value, root, tag)
        return result

    def _bcast_binomial(self, comm: Communicator, participants: List[int],
                        value: Any, root: int, tag) -> Any:
        n = len(participants)
        me = comm.rank_of_proc(self.proc)
        pos = participants.index(me)
        rpos = participants.index(root)
        vrank = (pos - rpos) % n
        parent, children = binomial_peers(vrank, n)
        if parent is None:
            payload = _freeze(value)
        else:
            payload = yield from self.recv(None, tag, comm)
        for child in children:
            target = participants[(child + rpos) % n]
            yield from self.send(payload, target, tag, comm)
        return payload

    def _bcast_hierarchical(self, comm: Communicator, value: Any,
                            root: int, tag) -> Any:
        leaders, leader_of = self._node_groups(comm)
        me = comm.rank_of_proc(self.proc)
        my_leader = leader_of[me]
        root_leader = leader_of[root]
        payload = _freeze(value) if me == root else None
        if me == root and my_leader != me:
            yield from self.send(payload, my_leader, tag + ("seed",), comm)
        if me == my_leader:
            if me == root_leader and me != root:
                payload = yield from self.recv(root, tag + ("seed",), comm)
            payload = yield from self._bcast_binomial(
                comm, leaders, payload, root_leader, tag + ("lead",)
            )
            for r in sorted(r for r, l in leader_of.items() if l == me and r != me):
                if r == root:
                    continue
                yield from self.send(payload, r, tag + ("fan",), comm)
            return payload
        if me == root:
            return payload
        payload = yield from self.recv(my_leader, tag + ("fan",), comm)
        return payload

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  comm: Optional[Communicator] = None):
        """MPI_Allreduce: recursive doubling (flat tunings) or reduce-to-
        leaders + leader exchange + local bcast (hierarch).  ``op``
        defaults to addition."""
        comm = comm or self.comm_world
        if op is None:
            op = lambda a, b: a + b  # noqa: E731 - the MPI_SUM default
        tag = self._next_coll_tag(comm, "allreduce")
        if self.world.tuning == "openmpi-hierarch":
            leaders, leader_of = self._node_groups(comm)
            me = comm.rank_of_proc(self.proc)
            my_leader = leader_of[me]
            if me != my_leader:
                yield from self.send(_freeze(value), my_leader, tag + ("up",), comm)
                result = yield from self.recv(my_leader, tag + ("down",), comm)
                return result
            acc = _freeze(value)
            locals_ = sorted(r for r, l in leader_of.items() if l == me and r != me)
            for _ in locals_:
                contrib = yield from self.recv(None, tag + ("up",), comm)
                acc = op(acc, contrib)
            acc = yield from self._allreduce_rd(comm, leaders, acc, op, tag)
            for r in locals_:
                yield from self.send(acc, r, tag + ("down",), comm)
            return acc
        ranks = list(range(comm.size))
        result = yield from self._allreduce_rd(comm, ranks, value, op, tag)
        return result

    def _allreduce_rd(self, comm: Communicator, participants: List[int],
                      value: Any, op, tag) -> Any:
        n = len(participants)
        acc = _freeze(value)
        if n == 1:
            return acc
        me = comm.rank_of_proc(self.proc)
        pos = participants.index(me)
        pow2 = 1 << (n.bit_length() - 1)
        rem = n - pow2
        newrank = -1
        if pos < 2 * rem:
            if pos % 2 == 1:
                yield from self.send(acc, participants[pos - 1], tag + ("f",), comm)
            else:
                got = yield from self.recv(participants[pos + 1], tag + ("f",), comm)
                acc = op(acc, got)
                newrank = pos // 2
        else:
            newrank = pos - rem
        if newrank >= 0:
            mask = 1
            while mask < pow2:
                pnew = newrank ^ mask
                ppos = pnew * 2 if pnew < rem else pnew + rem
                peer = participants[ppos]
                yield from self.send(acc, peer, tag + ("x", mask), comm)
                got = yield from self.recv(peer, tag + ("x", mask), comm)
                acc = op(acc, got)
                mask <<= 1
        if pos < 2 * rem:
            if pos % 2 == 0:
                yield from self.send(acc, participants[pos + 1], tag + ("u",), comm)
            else:
                acc = yield from self.recv(participants[pos - 1], tag + ("u",), comm)
        return acc


    # ------------------------------------------------------------------
    # Rooted collectives (binomial trees over the active tuning's
    # point-to-point layer)
    # ------------------------------------------------------------------
    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
               root: int = 0, comm: Optional[Communicator] = None):
        """MPI_Reduce: binomial fan-in to ``root``; only the root gets
        the result (others return None)."""
        comm = comm or self.comm_world
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        tag = self._next_coll_tag(comm, "reduce")
        n = comm.size
        me = comm.rank_of_proc(self.proc)
        vrank = (me - root) % n
        parent, children = binomial_peers(vrank, n)
        acc = _freeze(value)
        for child in sorted(children):
            got = yield from self.recv(None, tag + (child,), comm)
            acc = op(acc, got)
        if parent is not None:
            target = (parent + root) % n
            yield from self.send(acc, target, tag + (vrank,), comm)
            return None
        return acc

    def gather(self, value: Any, root: int = 0,
               comm: Optional[Communicator] = None):
        """MPI_Gather: binomial fan-in of (rank, value) pairs; the root
        returns the list ordered by rank, others None."""
        comm = comm or self.comm_world
        tag = self._next_coll_tag(comm, "gather")
        n = comm.size
        me = comm.rank_of_proc(self.proc)
        vrank = (me - root) % n
        parent, children = binomial_peers(vrank, n)
        bundle = [(me, _freeze(value))]
        for child in sorted(children):
            got = yield from self.recv(None, tag + (child,), comm)
            bundle.extend(got)
        if parent is not None:
            target = (parent + root) % n
            yield from self.send(bundle, target, tag + (vrank,), comm)
            return None
        return [v for _, v in sorted(bundle)]

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0,
                comm: Optional[Communicator] = None):
        """MPI_Scatter: the root distributes ``values[rank]`` down a
        binomial tree (each subtree's slice travels together); every
        rank returns its element."""
        comm = comm or self.comm_world
        tag = self._next_coll_tag(comm, "scatter")
        n = comm.size
        me = comm.rank_of_proc(self.proc)
        vrank = (me - root) % n
        parent, children = binomial_peers(vrank, n)
        if parent is None:
            if values is None or len(values) != n:
                raise ValueError(
                    f"scatter root needs exactly {n} values, got "
                    f"{None if values is None else len(values)}"
                )
            # key the bundle by vrank; entry vr holds the element destined
            # for real rank (vr + root) mod n
            bundle = {vr: _freeze(values[(vr + root) % n]) for vr in range(n)}
            mine = bundle.pop(0)
        else:
            bundle = yield from self.recv(None, tag, comm)
            mine = bundle.pop(vrank)
        for child in reversed(sorted(children)):
            # the child's subtree spans vranks [child, child + subtree)
            stride = child & -child
            subtree = {vr: v for vr, v in bundle.items()
                       if child <= vr < child + stride}
            for vr in subtree:
                del bundle[vr]
            target = (child + root) % n
            yield from self.send(subtree, target, tag, comm)
        return mine

    def alltoall(self, values: Sequence[Any],
                 comm: Optional[Communicator] = None):
        """MPI_Alltoall: pairwise exchange; ``values[r]`` goes to rank
        ``r``; returns the list received, indexed by source rank."""
        comm = comm or self.comm_world
        tag = self._next_coll_tag(comm, "alltoall")
        n = comm.size
        me = comm.rank_of_proc(self.proc)
        if len(values) != n:
            raise ValueError(f"alltoall needs {n} values, got {len(values)}")
        out: List[Any] = [None] * n
        out[me] = _freeze(values[me])
        for r in range(1, n):
            send_to = (me + r) % n
            recv_from = (me - r) % n
            yield from self.send(values[send_to], send_to, tag + (r,), comm)
            out[recv_from] = yield from self.recv(recv_from, tag + (r,), comm)
        return out


@dataclass
class MpiRequest:
    """Handle of a non-blocking point-to-point operation."""

    kind: str                      # "send" | "recv"
    event: Any = None              # source-completion event (sends)
    match: Any = None              # (comm, source, tag) (receives)


@dataclass
class MpiResult:
    time: float
    results: List[Any]
    world: MpiWorld


def run_mpi(
    main: Callable[..., Any],
    num_ranks: int,
    images_per_node: Optional[int] = None,
    spec: Optional[MachineSpec] = None,
    tuning: str = "openmpi",
    profile: ConduitProfile = MPI_NATIVE,
    args: Tuple = (),
) -> MpiResult:
    """Run ``main(ctx, *args)`` on ``num_ranks`` MPI ranks.

    Mirrors :func:`repro.runtime.program.run_spmd` so benchmark harnesses
    can treat the two stacks uniformly.
    """
    if spec is None:
        ipn = images_per_node or 1
        spec = paper_cluster(max(-(-num_ranks // ipn), 1))
    engine = Engine()
    machine = build_machine(engine, spec, num_ranks, images_per_node=images_per_node)
    world = MpiWorld(machine, tuning=tuning, profile=profile)
    comm_world = Communicator(world, list(range(num_ranks)))
    processes = []
    for proc in range(num_ranks):
        ctx = MpiContext(world, proc, comm_world)
        processes.append(Process(engine, main(ctx, *args), name=f"rank{proc}"))
    final = engine.run()
    return MpiResult(time=final, results=[p.result for p in processes], world=world)
