"""``python -m repro`` — the reproduction report.

Runs the headline experiments (E1–E5) and prints the paper-vs-measured
markdown table.  Use ``--quick`` for a reduced sweep, ``-o FILE`` to
write the report to disk.  For individual experiment tables use
``python -m repro.bench``; for the full assertion-guarded suite run
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys

from .report import render_report, run_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps (seconds instead of minutes)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the markdown report to this file")
    args = parser.parse_args(argv)

    claims = run_report(quick=args.quick)
    text = render_report(claims)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0 if all(c.ok for c in claims) else 1


if __name__ == "__main__":
    sys.exit(main())
