"""Team collective operations — the paper's core contribution (§IV).

Barriers (flat dissemination variants, linear, and the paper's TDLB),
all-to-all reductions, and one-to-all broadcasts, each in flat and
memory-hierarchy-aware two-level forms, selectable by name through
:mod:`~repro.collectives.registry`.
"""

from .barrier import (
    barrier_dissemination,
    barrier_dissemination_mcs,
    barrier_dissemination_twowait,
    barrier_linear,
    barrier_tdlb,
    barrier_tdlb_numa,
    barrier_tournament,
)
from .alltoall import (
    alltoall_linear_flat,
    alltoall_pairwise_flat,
    alltoall_two_level,
)
from .base import NOTIFY_NBYTES, binomial_peers, dissemination_rounds, payload_nbytes
from .macro import MacroBarriers, MacroCollectives, Replayed
from .gather import (
    allgather_bruck_flat,
    allgather_linear_flat,
    allgather_two_level,
)
from .broadcast import bcast_binomial_flat, bcast_linear_flat, bcast_two_level
from .reduce import (
    REDUCE_OPS,
    allreduce_binomial_flat,
    allreduce_linear_flat,
    allreduce_recursive_doubling,
    allreduce_three_level,
    allreduce_two_level,
)
from .rabenseifner import allreduce_rabenseifner
from .registry import (
    ALLGATHERS,
    ALLTOALLS,
    BARRIERS,
    BROADCASTS,
    REDUCTIONS,
    resolve,
)

__all__ = [
    "barrier_dissemination",
    "barrier_dissemination_mcs",
    "barrier_dissemination_twowait",
    "barrier_linear",
    "barrier_tdlb",
    "barrier_tdlb_numa",
    "barrier_tournament",
    "allgather_linear_flat",
    "allgather_bruck_flat",
    "allgather_two_level",
    "ALLGATHERS",
    "ALLTOALLS",
    "alltoall_linear_flat",
    "alltoall_pairwise_flat",
    "alltoall_two_level",
    "bcast_binomial_flat",
    "bcast_linear_flat",
    "bcast_two_level",
    "allreduce_binomial_flat",
    "allreduce_linear_flat",
    "allreduce_recursive_doubling",
    "allreduce_two_level",
    "allreduce_rabenseifner",
    "allreduce_three_level",
    "REDUCE_OPS",
    "BARRIERS",
    "REDUCTIONS",
    "BROADCASTS",
    "resolve",
    "NOTIFY_NBYTES",
    "MacroBarriers",
    "MacroCollectives",
    "Replayed",
    "binomial_peers",
    "dissemination_rounds",
    "payload_nbytes",
]
