"""Barrier algorithms: dissemination variants, linear, and TDLB.

This module implements the paper's §IV:

* :func:`barrier_dissemination` — the classic flat dissemination barrier
  [Hensgen/Finkel/Manber 1988] reformulated for one-sided PGAS with the
  paper's single-wait ``sync_flags`` carry.  Hierarchy-unaware: with
  ``path="auto"`` on an unaware runtime, same-node notifications take the
  conduit loopback, which is what makes it collapse at 8 images/node.
* :func:`barrier_dissemination_mcs` / :func:`barrier_dissemination_twowait`
  — the historical two-array [Mellor-Crummey & Scott 1991, Alg. 9] and
  two-wait [Hensgen et al.] formulations, modeled with their extra
  per-round bookkeeping; CAF 2.0 uses the former.
* :func:`barrier_linear` — the centralized counter barrier: 2(n−1)
  notifications through one leader.  Great inside a node, terrible
  across nodes (§IV-A's analysis).
* :func:`barrier_tdlb` — **Algorithm 1**, the paper's Team Dissemination
  Linear Barrier: (1) slaves sync linearly with their node leader,
  (2) leaders run dissemination among themselves, (3) leaders release
  their intranode set.

Each function is a generator run by every member of the team, and every
function must be entered by *all* members of the team (SPMD collective
semantics) or the simulation deadlocks — deliberately, as the real
program would.
"""

from __future__ import annotations

from typing import Iterator

from ..faults.manager import wait_or_fail
from ..teams.team import TeamView
from .base import binomial_peers, dissemination_rounds, notify

__all__ = [
    "barrier_dissemination",
    "barrier_dissemination_mcs",
    "barrier_dissemination_twowait",
    "barrier_linear",
    "barrier_tournament",
    "barrier_tdlb",
    "barrier_tdlb_numa",
]

#: extra per-round local bookkeeping of the two-sync-array variant [7]:
#: sense reversal + parity flip on a shared line (two extra cache events)
MCS_EXTRA_ROUND_COST = 0.12e-6
#: extra per-round cost of the two-wait variant [3]: the second wait
#: (flag reset visibility) adds roughly one coherence latency
TWOWAIT_EXTRA_ROUND_COST = 0.25e-6


def _all_indices(view: TeamView) -> list[int]:
    return list(range(1, view.size + 1))


def barrier_dissemination(ctx, view: TeamView, path: str = "auto") -> Iterator:
    """Flat one-wait dissemination over the whole team: n·⌈log2 n⌉
    notifications, ⌈log2 n⌉ rounds."""
    seq = view.next_seq("diss")
    yield from dissemination_rounds(
        ctx, view, _all_indices(view), variant="diss", seq=seq, path=path
    )


def barrier_dissemination_mcs(ctx, view: TeamView, path: str = "auto") -> Iterator:
    """Flat dissemination with the two-sync-array bookkeeping of [7]."""
    seq = view.next_seq("diss-mcs")
    yield from dissemination_rounds(
        ctx, view, _all_indices(view), variant="diss-mcs", seq=seq,
        path=path, extra_round_cost=MCS_EXTRA_ROUND_COST,
    )


def barrier_dissemination_twowait(ctx, view: TeamView, path: str = "auto") -> Iterator:
    """Flat dissemination with the two-wait bookkeeping of [3]."""
    seq = view.next_seq("diss-2w")
    yield from dissemination_rounds(
        ctx, view, _all_indices(view), variant="diss-2w", seq=seq,
        path=path, extra_round_cost=TWOWAIT_EXTRA_ROUND_COST,
    )


def barrier_linear(ctx, view: TeamView, path: str = "auto") -> Iterator:
    """Centralized counter barrier over the whole team, leader = index 1.

    2(n−1) notifications in two serial phases — the §IV-A comparison
    point: cheaper than dissemination when everything serializes anyway
    (one shared-memory node), slower across nodes."""
    seq = view.next_seq("linear")
    shared = view.shared
    n = view.size
    if n == 1:
        return
    macro = getattr(ctx, "macro", None)
    if macro is not None and macro.engages(view):
        # Offer the window to the macro-event coordinator; on replay the
        # barrier is already complete (exit times, flag state, traffic
        # all mirrored) and this image just returns.  Otherwise fall
        # through to the fine-grained protocol with the seq drawn above.
        replayed = yield from macro.join(ctx, view, "linear", seq, path=path)
        if replayed:
            return
    leader = 1
    me = view.index
    if me != leader:
        yield from notify(ctx, view, leader, shared.cocounter(leader), path=path)
        yield from wait_or_fail(
            ctx, view, shared.release_flag(me), lambda v, s=seq: v >= s
        )
    else:
        yield from wait_or_fail(
            ctx, view, shared.cocounter(leader),
            lambda v, s=seq * (n - 1): v >= s,
        )
        for slave in range(2, n + 1):
            yield from notify(
                ctx, view, slave, shared.release_flag(slave), path=path
            )


def barrier_tournament(ctx, view: TeamView, path: str = "auto") -> Iterator:
    """Tournament barrier [Mellor-Crummey & Scott 1991]: statically paired
    rounds fan arrivals into a champion (rank 0) along a binomial tree —
    2(n−1) notifications like the linear barrier, but ⌈log₂ n⌉ *rounds*
    like dissemination, trading total messages for critical-path depth.
    Included for the §VI comparison space (and the E6 counts bench)."""
    seq = view.next_seq("tournament")
    shared = view.shared
    n = view.size
    if n == 1:
        return
    rank = view.index - 1
    parent, children = binomial_peers(rank, n)
    # fan-in: wait for each child's arrival, then report to the parent
    for child in sorted(children):
        arrive = shared.diss_flag(view.index, child, "tourn-arrive")
        yield from wait_or_fail(ctx, view, arrive, lambda v, s=seq: v >= s)
    if parent is not None:
        arrive = shared.diss_flag(parent + 1, rank, "tourn-arrive")
        yield from notify(ctx, view, parent + 1, arrive, path=path)
        release = shared.diss_flag(view.index, 0, "tourn-release")
        yield from wait_or_fail(ctx, view, release, lambda v, s=seq: v >= s)
    # fan-out: champion (and each released winner) wakes its children
    for child in children:
        release = shared.diss_flag(child + 1, 0, "tourn-release")
        yield from notify(ctx, view, child + 1, release, path=path)


def barrier_tdlb(ctx, view: TeamView) -> Iterator:
    """Algorithm 1 — Team Dissemination Linear Barrier.

    Step 1: each non-leader notifies its node leader's ``cocounter`` via a
    direct shared-memory store and blocks on its release flag.  The
    leader waits for all its intranode slaves to arrive.
    Step 2: leaders (one per node with members in the team) run the
    one-wait dissemination barrier among themselves; with block placement
    these are all inter-node messages.
    Step 3: each leader releases its intranode set with direct stores.

    On a flat team (1 image/node) there are no slaves and TDLB reduces to
    the leader dissemination — the paper's claim (1) in §V-A.
    """
    seq = view.next_seq("tdlb")
    macro = getattr(ctx, "macro", None)
    if macro is not None and macro.engages(view):
        # See barrier_linear: replayed windows are complete on return.
        replayed = yield from macro.join(ctx, view, "tdlb", seq)
        if replayed:
            return
    shared = view.shared
    h = shared.hierarchy
    me = view.index
    leader = h.leader_of[me]

    if me != leader:
        # Step 1 (slave side): arrive at the leader, then wait for release.
        yield from notify(
            ctx, view, leader, shared.cocounter(leader), path="direct"
        )
        yield from wait_or_fail(
            ctx, view, shared.release_flag(me), lambda v, s=seq: v >= s
        )
        return

    slaves = h.slaves_of(me)
    if slaves:
        # Step 1 (leader side): wait for the whole intranode set.
        yield from wait_or_fail(
            ctx, view, shared.cocounter(me),
            lambda v, s=seq * len(slaves): v >= s,
        )
    # Step 2: inter-node dissemination among leaders only.
    yield from dissemination_rounds(
        ctx, view, h.leaders, variant="tdlb-leaders", seq=seq, path="auto"
    )
    # Step 3: release the intranode set.
    for slave in slaves:
        yield from notify(
            ctx, view, slave, shared.release_flag(slave), path="direct"
        )


def barrier_tdlb_numa(ctx, view: TeamView) -> Iterator:
    """Three-level TDLB — the paper's §VII future work, implemented.

    Adds a socket tier below the node tier: (1) images sync linearly
    with their *socket* leader (intra-socket coherence latency), (2)
    socket leaders sync linearly with the node leader (cross-socket
    latency), (3) node leaders run dissemination over the interconnect,
    then releases cascade back down.  On a node with a single populated
    socket this degenerates to plain TDLB; on a flat team, to the leader
    dissemination — the same graceful-degeneration property TDLB has.
    """
    seq = view.next_seq("tdlb3")
    shared = view.shared
    h = shared.hierarchy
    me = view.index
    node_leader = h.leader_of[me]
    my_node = h.node_of[me]
    socket_sets = h.socket_sets(my_node)
    my_socket = h.socket_of[me]
    # Socket leader: the node leader if it sits on this socket, else the
    # lowest index — so the node leader never waits on itself.
    my_socket_set = socket_sets[my_socket]
    socket_leader = (
        node_leader if node_leader in my_socket_set else my_socket_set[0]
    )
    # Release flags are namespaced per tier via distinct variants of the
    # dissemination-flag table (reusing it as a generic counter store).
    sock_arrive = shared.diss_flag(socket_leader, 0, "tdlb3-sarr")
    node_arrive = shared.diss_flag(node_leader, 0, "tdlb3-narr")

    if me != socket_leader:
        # Tier 1 up: arrive at the socket leader.
        yield from notify(ctx, view, socket_leader, sock_arrive, path="direct")
        my_release = shared.diss_flag(me, 0, "tdlb3-rel")
        yield from wait_or_fail(ctx, view, my_release, lambda v, s=seq: v >= s)
        return

    n_socket_slaves = len(my_socket_set) - 1
    if n_socket_slaves:
        yield from wait_or_fail(
            ctx, view, sock_arrive, lambda v, s=seq * n_socket_slaves: v >= s
        )

    socket_leaders = [
        (node_leader if node_leader in members else members[0])
        for _, members in sorted(socket_sets.items())
    ]
    if me != node_leader:
        # Tier 2 up: socket leader arrives at the node leader.
        yield from notify(ctx, view, node_leader, node_arrive, path="direct")
        my_release = shared.diss_flag(me, 0, "tdlb3-rel")
        yield from wait_or_fail(ctx, view, my_release, lambda v, s=seq: v >= s)
    else:
        n_sock_leaders = len([sl for sl in socket_leaders if sl != me])
        if n_sock_leaders:
            yield from wait_or_fail(
                ctx, view, node_arrive,
                lambda v, s=seq * n_sock_leaders: v >= s,
            )
        # Tier 3: node leaders across the interconnect.
        yield from dissemination_rounds(
            ctx, view, h.leaders, variant="tdlb3-leaders", seq=seq, path="auto"
        )
        # Tier 2 down: release the other socket leaders.
        for sl in socket_leaders:
            if sl != me:
                yield from notify(
                    ctx, view, sl, shared.diss_flag(sl, 0, "tdlb3-rel"),
                    path="direct",
                )
    # Tier 1 down: every socket leader releases its socket.
    for slave in my_socket_set:
        if slave != me:
            yield from notify(
                ctx, view, slave, shared.diss_flag(slave, 0, "tdlb3-rel"),
                path="direct",
            )
