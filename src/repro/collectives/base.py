"""Shared machinery for team collectives.

Every collective here is a *generator function* executed inside each
member image's simulated process.  They receive the image's
:class:`~repro.teams.team.TeamView` plus a ``ctx`` object exposing the
conduit, machine, and runtime config (duck-typed; the real one is
:class:`repro.runtime.program.CafContext`).

The module also holds the one-sided **dissemination core** used both by
the flat barrier and by the leader phase of TDLB — the paper's
"``sync_flags`` carry" with a single wait per round (§V-A): each image
keeps one monotonically increasing counter per round; the partner's
notification is an increment, and arrival at invocation ``seq`` is the
predicate ``counter >= seq``.  Nothing is ever reset, so there is no
second wait and no parity bookkeeping.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence

from ..faults.manager import wait_or_fail
from ..sim import Timeout
from ..teams.team import TeamView

__all__ = [
    "NOTIFY_NBYTES",
    "payload_nbytes",
    "combine_flops",
    "dissemination_rounds",
    "notify",
    "binomial_peers",
]

#: size of a pure synchronization notification (one flag word)
NOTIFY_NBYTES = 8


def payload_nbytes(value) -> int:
    """Bytes on the wire for a collective payload.

    Arrays report their true size; containers (the gather family moves
    lists/dicts of contributions) are summed recursively; anything else
    is one word.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (list, tuple)):
        return max(8, sum(payload_nbytes(v) for v in value))
    if isinstance(value, dict):
        return max(8, sum(payload_nbytes(v) for v in value.values()))
    return 8  # python scalar → one word


def combine_flops(value) -> float:
    """Element count of one combine step (charged as flops)."""
    size = getattr(value, "size", None)
    if size is not None:
        return float(size)
    return 1.0


def notify(ctx, view: TeamView, target_index: int, cell, path: str = "auto") -> Iterator:
    """Send one flag-word notification to team member ``target_index``,
    incrementing ``cell`` on delivery."""
    src = view.proc
    dst = view.shared.proc_of(target_index)
    yield from ctx.conduit.transfer(
        src, dst, NOTIFY_NBYTES, on_delivered=lambda: cell.add(1), path=path
    )


def dissemination_rounds(
    ctx,
    view: TeamView,
    participants: Sequence[int],
    variant: str,
    seq: int,
    path: str = "auto",
    extra_round_cost: float = 0.0,
) -> Iterator:
    """One-wait dissemination barrier among ``participants`` (team indices).

    ``participants`` must be identical (same order) at every participant;
    ``variant`` namespaces the sync_flags so different algorithms on the
    same team never alias counters; ``seq`` is this call's invocation
    number for the carry predicate.  ``extra_round_cost`` models the
    additional local bookkeeping of the two-array [7] / two-wait [3]
    historical variants (experiment E6 compares them).
    """
    n = len(participants)
    if n <= 1:
        return
    shared = view.shared
    rank = participants.index(view.index)
    rounds = math.ceil(math.log2(n))
    for r in range(rounds):
        dist = 1 << r
        send_to = participants[(rank + dist) % n]
        flag = shared.diss_flag(send_to, r, variant)
        yield from notify(ctx, view, send_to, flag, path=path)
        my_flag = shared.diss_flag(view.index, r, variant)
        yield from wait_or_fail(ctx, view, my_flag, lambda v, s=seq: v >= s)
        if extra_round_cost > 0.0:
            yield Timeout(extra_round_cost)


def binomial_peers(rank: int, n: int) -> tuple[int | None, List[int]]:
    """Binomial-tree shape over virtual ranks 0..n-1 rooted at 0.

    Returns ``(parent, children)``: ``parent`` is ``rank`` with its lowest
    set bit cleared (None for the root); ``children`` are ``rank + 2^k``
    for every ``2^k`` by which ``rank`` is divisible twice over, listed
    largest stride first — the order a root-down broadcast sends in, so
    the deepest subtree starts earliest.
    """
    if not 0 <= rank < n:
        raise ValueError(f"rank {rank} out of range [0, {n})")
    parent = None if rank == 0 else rank - (rank & -rank)
    children: List[int] = []
    stride = 1
    while stride < n:
        if rank % (stride << 1) != 0:
            break
        child = rank + stride
        if child < n:
            children.append(child)
        stride <<= 1
    children.reverse()
    return parent, children
