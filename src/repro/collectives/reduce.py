"""All-to-all reduction (``co_sum``/``co_max``/``co_min``) algorithms.

Four strategies, from the paper's "default approach" to its two-level
contribution:

* :func:`allreduce_linear_flat` — the naive centralized reduction the
  original UHCAF runtime shipped: every image puts its contribution to
  image 1, which combines and pushes the result back out one image at a
  time.  Every transfer goes through the conduit (loopback for same-node
  peers on an unaware runtime), and the fan-out serializes at the root —
  this is the baseline the paper reports up to 74× over.
* :func:`allreduce_binomial_flat` — binomial-tree reduce to index 1 then
  binomial broadcast; the classic flat improvement, still unaware.
* :func:`allreduce_recursive_doubling` — the MPI-style exchange
  algorithm (MPICH/MVAPICH allreduce for short messages).
* :func:`allreduce_two_level` — the paper's §IV methodology applied to
  reduction: intranode combine at each leader via direct shared-memory
  transfers, recursive doubling among node leaders, intranode fan-out.

Every function returns the reduced value via the generator's return
value (``result = yield from co_sum(...)``).  Data movement is real:
results are bit-comparable against a NumPy reference in the tests
(exactly for integer dtypes; to rounding for floats, since combine order
differs between algorithms just as it does between real MPI algorithms).
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from ..faults.manager import wait_or_fail
from ..sim import Timeout
from ..teams.team import TeamView
from .base import binomial_peers, combine_flops, payload_nbytes

__all__ = [
    "REDUCE_OPS",
    "allreduce_linear_flat",
    "allreduce_binomial_flat",
    "allreduce_recursive_doubling",
    "allreduce_two_level",
    "allreduce_three_level",
]

REDUCE_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


#: The original UHCAF reduction was Active-Message based: each arriving
#: contribution runs a handler on the root image's conduit engine, so the
#: root pays a serialized per-message software cost on top of the wire
#: traffic.  This is what pushes the centralized baseline into the
#: paper's reported ~74× territory at 44 nodes × 8 images.
AM_HANDLER_COST = 3.6e-6


def _combine(op, a: Any, b: Any) -> Any:
    if callable(op):
        # F2018 co_reduce with a user operation: any commutative,
        # associative callable.  A crashing or None-returning operation
        # would otherwise surface images-deep inside an algorithm as a
        # nonsense partial on one image only; fail loudly and uniformly.
        try:
            result = op(a, b)
        except Exception as exc:
            name = getattr(op, "__name__", repr(op))
            raise RuntimeError(
                f"co_reduce user operation {name!r} raised "
                f"{type(exc).__name__}: {exc} (combining {a!r} and {b!r})"
            ) from exc
        if result is None:
            name = getattr(op, "__name__", repr(op))
            raise RuntimeError(
                f"co_reduce user operation {name!r} returned None "
                f"(forgot the return?) combining {a!r} and {b!r}"
            )
        return result
    if op == "maxloc":
        # (value, location) pairs: larger value wins, ties to lower location
        # — the semantics HPL's pivot search needs.
        av, ai = a
        bv, bi = b
        return a if (av, -ai) >= (bv, -bi) else b
    try:
        ufunc = REDUCE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown reduce op {op!r}; have {sorted(REDUCE_OPS) + ['maxloc']}"
        ) from None
    return ufunc(a, b)


def _freeze(value: Any) -> Any:
    """Snapshot a contribution so later local mutation can't corrupt the
    collective — puts copy out of the source buffer at issue time."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


def _send_value(
    ctx, view: TeamView, target_index: int, tag, value: Any, path: str = "auto"
) -> Iterator:
    """Costed transfer of a payload into a member's mailbox."""
    shared = view.shared
    dst = shared.proc_of(target_index)
    payload = _freeze(value)
    yield from ctx.conduit.transfer(
        view.proc,
        dst,
        payload_nbytes(value),
        on_delivered=lambda: shared.deposit(target_index, tag, payload),
        path=path,
    )


def _wait_values(ctx, view: TeamView, tag, count: int) -> list:
    """Block until ``count`` deposits sit in my mailbox ``tag``; drain them.

    This is the single blocking point of every data-carrying collective
    (reduce, broadcast, gather, alltoall, and team formation all wait
    here), so routing it through the failure-aware
    :func:`~repro.faults.manager.wait_or_fail` makes the whole family
    detect failed images instead of hanging on a mailbox a dead image was
    supposed to fill.
    """
    cell = view.shared.mail_cell(view.index, tag)
    yield from wait_or_fail(ctx, view, cell, lambda v, c=count: v >= c)
    return view.shared.collect(view.index, tag)


# ----------------------------------------------------------------------
# Flat centralized (the old default)
# ----------------------------------------------------------------------
def allreduce_linear_flat(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None, path: str = "auto",
) -> Iterator:
    """Gather-to-root, combine, serial fan-out.  2(n−1) conduit messages,
    all serialized through image 1's node."""
    _combine(op, value, value)  # validate op early, uniformly on all images
    tag = view.next_op_tag("red-lin")
    n = view.size
    if n == 1:
        return _freeze(value)
    root = 1
    me = view.index
    out_tag = tag + ("out",)
    if me != root:
        yield from _send_value(ctx, view, root, tag, value, path=path)
        if result_image is not None and me != result_image:
            return None
        got = yield from _wait_values(ctx, view, out_tag, 1)
        return got[0]
    contributions = yield from _wait_values(ctx, view, tag, n - 1)
    # Serialized AM-handler execution for every queued contribution.
    yield Timeout(AM_HANDLER_COST * (n - 1))
    acc = _freeze(value)
    for contrib in contributions:
        acc = _combine(op, acc, contrib)
    yield ctx.compute_cost(combine_flops(value) * (n - 1))
    targets: Sequence[int]
    if result_image is None:
        targets = [i for i in range(1, n + 1) if i != root]
    else:
        targets = [] if result_image == root else [result_image]
    for target in targets:
        yield from _send_value(ctx, view, target, out_tag, acc, path=path)
    if result_image is not None and me != result_image:
        return None
    return acc


# ----------------------------------------------------------------------
# Flat binomial reduce + binomial broadcast
# ----------------------------------------------------------------------
def allreduce_binomial_flat(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None, path: str = "auto",
) -> Iterator:
    """Binomial-tree reduce to index 1, then binomial broadcast back."""
    _combine(op, value, value)
    tag = view.next_op_tag("red-bin")
    n = view.size
    if n == 1:
        return _freeze(value)
    rank = view.index - 1
    parent, children = binomial_peers(rank, n)
    acc = _freeze(value)
    # Reduce phase: receive each child's subtree partial (smallest stride
    # arrives first), then forward to parent.
    for child in sorted(children):
        got = yield from _wait_values(ctx, view, tag + (child,), 1)
        acc = _combine(op, acc, got[0])
        yield ctx.compute_cost(combine_flops(value))
    if parent is not None:
        yield from _send_value(ctx, view, parent + 1, tag + (rank,), acc, path=path)
    # Broadcast phase: root (rank 0 = index 1) pushes down the same tree.
    out_tag = tag + ("out",)
    if parent is not None:
        got = yield from _wait_values(ctx, view, out_tag, 1)
        acc = got[0]
    for child in children:
        yield from _send_value(ctx, view, child + 1, out_tag, acc, path=path)
    if result_image is not None and view.index != result_image:
        return None
    return acc


# ----------------------------------------------------------------------
# Recursive doubling core (shared by the MPI flavor and the leader phase)
# ----------------------------------------------------------------------
def _recursive_doubling(
    ctx, view: TeamView, participants: Sequence[int], value: Any,
    op: str, tag, path: str = "auto",
) -> Iterator:
    """MPICH-style allreduce among ``participants`` (team indices; caller
    must be one of them).  Handles non-power-of-two sizes with the
    standard fold-in/fold-out steps."""
    n = len(participants)
    acc = _freeze(value)
    if n == 1:
        return acc
    rank = participants.index(view.index)
    pow2 = 1 << (n.bit_length() - 1)
    if pow2 > n:
        pow2 >>= 1
    rem = n - pow2

    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 1:
            # Odd extras fold into their even neighbour and sit out.
            yield from _send_value(
                ctx, view, participants[rank - 1], tag + ("fold", rank), acc, path=path
            )
        else:
            got = yield from _wait_values(ctx, view, tag + ("fold", rank + 1), 1)
            acc = _combine(op, acc, got[0])
            yield ctx.compute_cost(combine_flops(value))
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank >= 0:
        mask = 1
        while mask < pow2:
            partner_new = newrank ^ mask
            partner_rank = (
                partner_new * 2 if partner_new < rem else partner_new + rem
            )
            step_tag = tag + ("rd", mask, newrank)
            partner_tag = tag + ("rd", mask, partner_new)
            yield from _send_value(
                ctx, view, participants[partner_rank], partner_tag, acc, path=path
            )
            got = yield from _wait_values(ctx, view, step_tag, 1)
            acc = _combine(op, acc, got[0])
            yield ctx.compute_cost(combine_flops(value))
            mask <<= 1

    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from _send_value(
                ctx, view, participants[rank + 1], tag + ("unfold", rank + 1),
                acc, path=path,
            )
        else:
            got = yield from _wait_values(ctx, view, tag + ("unfold", rank), 1)
            acc = got[0]
    return acc


def allreduce_recursive_doubling(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None, path: str = "auto",
) -> Iterator:
    """Flat recursive-doubling allreduce over the whole team."""
    _combine(op, value, value)
    tag = view.next_op_tag("red-rd")
    macro = getattr(ctx, "macro", None)
    if (
        macro is not None
        and result_image is None
        and not callable(op)
        and op in REDUCE_OPS
        and macro.engages_data(view)
    ):
        replayed = yield from macro.join(
            ctx, view, "reduce-rd", tag, payload=value, op=op
        )
        if replayed:
            return replayed.value
    participants = list(range(1, view.size + 1))
    acc = yield from _recursive_doubling(
        ctx, view, participants, value, op, tag, path=path
    )
    if result_image is not None and view.index != result_image:
        return None
    return acc


# ----------------------------------------------------------------------
# The paper's two-level reduction
# ----------------------------------------------------------------------
def allreduce_two_level(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None,
) -> Iterator:
    """§IV methodology applied to all-to-all reduction.

    Intranode contributions reach the node leader through direct
    shared-memory transfers; leaders combine across nodes with recursive
    doubling over the interconnect; leaders fan the result back out with
    direct stores.  The interconnect carries exactly
    ``⌈log2(#nodes)⌉ · #leaders`` payload messages instead of the flat
    algorithms' image-count-scaled traffic.
    """
    _combine(op, value, value)
    tag = view.next_op_tag("red-2l")
    n = view.size
    if n == 1:
        return _freeze(value)
    macro = getattr(ctx, "macro", None)
    if (
        macro is not None
        and result_image is None
        and not callable(op)
        and op in REDUCE_OPS
        and macro.engages_data(view)
    ):
        replayed = yield from macro.join(
            ctx, view, "reduce-2l", tag, payload=value, op=op
        )
        if replayed:
            return replayed.value
    h = view.shared.hierarchy
    me = view.index
    leader = h.leader_of[me]
    out_tag = tag + ("out",)

    if me != leader:
        yield from _send_value(ctx, view, leader, tag, value, path="direct")
        if result_image is not None and me != result_image:
            return None
        got = yield from _wait_values(ctx, view, out_tag, 1)
        return got[0]

    slaves = h.slaves_of(me)
    acc = _freeze(value)
    if slaves:
        contributions = yield from _wait_values(ctx, view, tag, len(slaves))
        for contrib in contributions:
            acc = _combine(op, acc, contrib)
        yield ctx.compute_cost(combine_flops(value) * len(slaves))

    acc = yield from _recursive_doubling(
        ctx, view, h.leaders, acc, op, tag + ("lead",), path="auto"
    )

    if result_image is None:
        targets = slaves
    else:
        targets = [result_image] if result_image in slaves else []
    for slave in targets:
        yield from _send_value(ctx, view, slave, out_tag, acc, path="direct")
    if result_image is not None and me != result_image:
        return None
    return acc


# ----------------------------------------------------------------------
# Three-level reduction (§VII future work: NUMA tier below the node tier)
# ----------------------------------------------------------------------
def allreduce_three_level(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None,
) -> Iterator:
    """Socket-aware reduction: contributions combine at *socket* leaders
    first (intra-socket coherence, parallel per-socket memory
    controllers), then at node leaders, then across nodes — the
    reduction analogue of :func:`~repro.collectives.barrier.barrier_tdlb_numa`.
    Degenerates to :func:`allreduce_two_level` on single-socket-occupancy
    nodes and to plain recursive doubling on flat teams."""
    _combine(op, value, value)
    tag = view.next_op_tag("red-3l")
    n = view.size
    if n == 1:
        return _freeze(value)
    h = view.shared.hierarchy
    me = view.index
    node_leader = h.leader_of[me]
    my_node = h.node_of[me]
    socket_sets = h.socket_sets(my_node)
    my_socket_set = socket_sets[h.socket_of[me]]
    socket_leader = (
        node_leader if node_leader in my_socket_set else my_socket_set[0]
    )
    out_tag = tag + ("out",)

    # Tier 1 up: combine within my socket at the socket leader.
    if me != socket_leader:
        yield from _send_value(ctx, view, socket_leader, tag + ("s",),
                               value, path="direct")
        if result_image is not None and me != result_image:
            return None
        got = yield from _wait_values(ctx, view, out_tag, 1)
        return got[0]

    acc = _freeze(value)
    socket_slaves = [i for i in my_socket_set if i != me]
    if socket_slaves:
        contributions = yield from _wait_values(
            ctx, view, tag + ("s",), len(socket_slaves))
        for contrib in contributions:
            acc = _combine(op, acc, contrib)
        yield ctx.compute_cost(combine_flops(value) * len(socket_slaves))

    # Tier 2 up: socket leaders combine at the node leader.
    socket_leaders = [
        (node_leader if node_leader in members else members[0])
        for _, members in sorted(socket_sets.items())
    ]
    if me != node_leader:
        yield from _send_value(ctx, view, node_leader, tag + ("n",),
                               acc, path="direct")
    else:
        other_leaders = [sl for sl in socket_leaders if sl != me]
        if other_leaders:
            contributions = yield from _wait_values(
                ctx, view, tag + ("n",), len(other_leaders))
            for contrib in contributions:
                acc = _combine(op, acc, contrib)
            yield ctx.compute_cost(combine_flops(value) * len(other_leaders))
        # Tier 3: across nodes.
        acc = yield from _recursive_doubling(
            ctx, view, h.leaders, acc, op, tag + ("lead",), path="auto")
        # Tier 2 down.
        for sl in socket_leaders:
            if sl != me:
                yield from _send_value(ctx, view, sl, tag + ("nd",),
                                       acc, path="direct")
    if me != node_leader:
        got = yield from _wait_values(ctx, view, tag + ("nd",), 1)
        acc = got[0]

    # Tier 1 down: socket leaders fan out to their sockets.
    if result_image is None:
        targets = socket_slaves
    else:
        targets = [result_image] if result_image in socket_slaves else []
    for slave in targets:
        yield from _send_value(ctx, view, slave, out_tag, acc, path="direct")
    if result_image is not None and me != result_image:
        return None
    return acc
