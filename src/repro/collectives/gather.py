"""All-gather collectives (extension beyond the paper's three ops).

The companion technical report applies the §IV methodology to barrier,
all-to-all reduction, and one-to-all broadcast; allgather is the natural
fourth member of the family (and what CAF programs build manually with
puts + a barrier).  Three strategies mirroring the reduction set:

* :func:`allgather_linear_flat` — everyone deposits at image 1, which
  redistributes the assembled list; the naive baseline.
* :func:`allgather_bruck_flat` — Bruck's ⌈log₂ n⌉-round doubling
  exchange over the whole team, hierarchy-unaware.
* :func:`allgather_two_level` — §IV applied: intranode gather at each
  leader (direct stores), Bruck among leaders with node-aggregated
  payloads, intranode fan-out.  The interconnect carries each datum to a
  node once instead of once per image.

All return a list of the contributions ordered by team index.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from .base import payload_nbytes
from .reduce import _freeze, _send_value, _wait_values
from ..teams.team import TeamView

__all__ = [
    "allgather_linear_flat",
    "allgather_bruck_flat",
    "allgather_two_level",
]


def allgather_linear_flat(ctx, view: TeamView, value: Any,
                          path: str = "auto") -> Iterator:
    """Gather-to-root + serial fan-out of the whole assembled list."""
    tag = view.next_op_tag("ag-lin")
    n = view.size
    if n == 1:
        return [_freeze(value)]
    root = 1
    me = view.index
    out_tag = tag + ("out",)
    if me != root:
        yield from _send_value(ctx, view, root, tag, (me, _freeze(value)),
                               path=path)
        got = yield from _wait_values(ctx, view, out_tag, 1)
        return got[0]
    pairs = [(root, _freeze(value))]
    pairs += (yield from _wait_values(ctx, view, tag, n - 1))
    assembled = [v for _, v in sorted(pairs)]
    for target in range(2, n + 1):
        yield from _send_value(ctx, view, target, out_tag, assembled, path=path)
    return assembled


def _bruck(ctx, view: TeamView, participants: List[int], mine: Any,
           tag, path: str = "auto") -> Iterator:
    """Bruck allgather among ``participants`` (team indices); returns the
    list ordered by participant position."""
    n = len(participants)
    if n == 1:
        return [mine]
    rank = participants.index(view.index)
    # blocks[i] holds the datum of participant (rank + i) mod n
    blocks: dict[int, Any] = {0: mine}
    dist = 1
    step = 0
    while dist < n:
        send_to = participants[(rank - dist) % n]
        recv_count = min(dist, n - dist)
        chunk = {i: blocks[i] for i in range(recv_count)}
        yield from _send_value(ctx, view, send_to, tag + (step,), chunk,
                               path=path)
        got = yield from _wait_values(ctx, view, tag + (step,), 1)
        for i, v in got[0].items():
            blocks[i + dist] = v
        dist <<= 1
        step += 1
    return [blocks[(p - rank) % n] for p in range(n)]


def allgather_bruck_flat(ctx, view: TeamView, value: Any,
                         path: str = "auto") -> Iterator:
    """⌈log₂ n⌉-round Bruck exchange over the whole team."""
    tag = view.next_op_tag("ag-bruck")
    participants = list(range(1, view.size + 1))
    result = yield from _bruck(ctx, view, participants, _freeze(value), tag,
                               path=path)
    return result


def allgather_two_level(ctx, view: TeamView, value: Any) -> Iterator:
    """Intranode gather → leader Bruck → intranode fan-out."""
    tag = view.next_op_tag("ag-2l")
    n = view.size
    if n == 1:
        return [_freeze(value)]
    h = view.shared.hierarchy
    me = view.index
    leader = h.leader_of[me]
    out_tag = tag + ("out",)

    if me != leader:
        yield from _send_value(ctx, view, leader, tag, (me, _freeze(value)),
                               path="direct")
        got = yield from _wait_values(ctx, view, out_tag, 1)
        return got[0]

    slaves = h.slaves_of(me)
    pairs = [(me, _freeze(value))]
    if slaves:
        pairs += (yield from _wait_values(ctx, view, tag, len(slaves)))
    node_chunk = sorted(pairs)  # [(index, value)] for my whole node

    chunks = yield from _bruck(ctx, view, h.leaders, node_chunk,
                               tag + ("lead",), path="auto")
    merged = sorted(pair for chunk in chunks for pair in chunk)
    assembled = [v for _, v in merged]
    for slave in slaves:
        yield from _send_value(ctx, view, slave, out_tag, assembled,
                               path="direct")
    return assembled
