"""All-to-all personalized exchange (extension — the methodology's
stress test).

Alltoall moves a *distinct* payload from every image to every other
image, so unlike broadcast/reduce there is no tree to hide behind: the
data volume is inherently n², and all a hierarchy-aware runtime can do
is aggregate.  Three strategies:

* :func:`alltoall_linear_flat` — n−1 direct sends per image, in a
  rank-rotated order so senders don't stampede one target at a time.
* :func:`alltoall_pairwise_flat` — the classic pairwise-exchange
  schedule: n−1 rounds, in round r image i exchanges with ``i XOR r``
  (power-of-two teams) or ``(i ± r) mod n``; still one conduit message
  per datum.
* :func:`alltoall_two_level` — §IV applied: each image hands its
  payloads to its node leader (direct stores), leaders exchange
  *node-aggregated* bundles (one interconnect message per node pair per
  round instead of ipn² image-pair messages), then leaders deliver
  locally.  The wire carries the same bytes but ~ipn² fewer messages —
  exactly the per-message-overhead battle the paper fights.

Input: ``payloads`` — dict (or list) mapping every team index to the
value destined for it.  Output: dict mapping each team index to the
value received from it (self-entry included).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping

from ..teams.team import TeamView
from .reduce import _freeze, _send_value, _wait_values

__all__ = [
    "alltoall_linear_flat",
    "alltoall_pairwise_flat",
    "alltoall_two_level",
]


def _normalize(view: TeamView, payloads) -> Dict[int, Any]:
    n = view.size
    if isinstance(payloads, Mapping):
        items = dict(payloads)
    else:
        items = {i + 1: v for i, v in enumerate(payloads)}
    if sorted(items) != list(range(1, n + 1)):
        raise ValueError(
            f"alltoall needs one payload per team index 1..{n}, "
            f"got keys {sorted(items)}"
        )
    return items


def alltoall_linear_flat(ctx, view: TeamView, payloads,
                         path: str = "auto") -> Iterator:
    """Each image sends its n−1 payloads directly, rotated by rank."""
    items = _normalize(view, payloads)
    tag = view.next_op_tag("a2a-lin")
    n = view.size
    me = view.index
    out = {me: _freeze(items[me])}
    if n == 1:
        return out
    for shift in range(1, n):
        target = (me - 1 + shift) % n + 1
        yield from _send_value(ctx, view, target, tag, (me, items[target]),
                               path=path)
    got = yield from _wait_values(ctx, view, tag, n - 1)
    for sender, value in got:
        out[sender] = value
    return out


def alltoall_pairwise_flat(ctx, view: TeamView, payloads,
                           path: str = "auto") -> Iterator:
    """n−1 pairwise-exchange rounds (the MPI_Alltoall long-message
    schedule): round r pairs me with (me−1 ± r) mod n."""
    items = _normalize(view, payloads)
    tag = view.next_op_tag("a2a-pw")
    n = view.size
    me = view.index
    out = {me: _freeze(items[me])}
    rank = me - 1
    for r in range(1, n):
        send_to = (rank + r) % n + 1
        recv_from = (rank - r) % n + 1
        yield from _send_value(ctx, view, send_to, tag + (r,),
                               (me, items[send_to]), path=path)
        got = yield from _wait_values(ctx, view, tag + (r,), 1)
        sender, value = got[0]
        assert sender == recv_from
        out[sender] = value
    return out


def alltoall_two_level(ctx, view: TeamView, payloads) -> Iterator:
    """§IV applied to alltoall: node-aggregated leader exchange."""
    items = _normalize(view, payloads)
    tag = view.next_op_tag("a2a-2l")
    n = view.size
    me = view.index
    out = {me: _freeze(items[me])}
    if n == 1:
        return out
    h = view.shared.hierarchy
    leader = h.leader_of[me]
    my_node = h.node_of[me]

    # Phase 1: hand my outgoing payloads to my leader, bucketed by the
    # destination's node (self-node payloads go straight into the local
    # delivery pool).
    up_tag = tag + ("up",)
    bundle: Dict[int, List] = {}
    for dest, value in items.items():
        if dest == me:
            continue
        bundle.setdefault(h.node_of[dest], []).append((me, dest, value))
    if me != leader:
        yield from _send_value(ctx, view, leader, up_tag, bundle,
                               path="direct")
        got = yield from _wait_values(ctx, view, tag + ("final", me), 1)
        out.update(got[0])
        return out

    slaves = h.slaves_of(me)
    node_outgoing: Dict[int, List] = {node: list(triples)
                                      for node, triples in bundle.items()}
    if slaves:
        contributions = yield from _wait_values(ctx, view, up_tag, len(slaves))
        for contrib in contributions:
            for node, triples in contrib.items():
                node_outgoing.setdefault(node, []).extend(triples)

    # Phase 2: pairwise exchange of node bundles among leaders.
    leaders = h.leaders
    num_leaders = len(leaders)
    my_rank = h.leader_rank[me]
    arrived: List = list(node_outgoing.pop(my_node, []))
    lead_tag = tag + ("lead",)
    for r in range(1, num_leaders):
        peer = leaders[(my_rank + r) % num_leaders]
        peer_node = h.node_of[peer]
        outgoing = node_outgoing.pop(peer_node, [])
        yield from _send_value(ctx, view, peer, lead_tag + (r,), outgoing,
                               path="auto")
        got = yield from _wait_values(ctx, view, lead_tag + (r,), 1)
        arrived.extend(got[0])

    # Phase 3: local delivery.
    per_member: Dict[int, Dict[int, Any]] = {}
    for sender, dest, value in arrived:
        per_member.setdefault(dest, {})[sender] = value
    out.update(per_member.pop(me, {}))
    for slave in slaves:
        yield from _send_value(ctx, view, slave, tag + ("final", slave),
                               per_member.get(slave, {}), path="direct")
    return out
