"""Macro-events: collapsing deterministic collective windows analytically.

A barrier over *n* images costs the engine O(n) fine-grained events —
per-slave bus holds, per-leader NIC injections, wire deliveries, release
ladders — and a reduction or broadcast adds payload transfers and
combine timeouts on top.  But when nothing can *observe or perturb* the
window, those events are pure bookkeeping: the protocol is closed-form,
so every image's exit time (and, for data-carrying collectives, its
result value) can be computed arithmetically and the whole window
replaced by a handful of wake events — one per distinct exit instant.
On node-symmetric teams the exit instants of different nodes coincide
exactly (identical float arithmetic), so a 1024-image TDLB barrier
collapses from thousands of engine events to roughly a dozen, and a
flat 10k-image allreduce from hundreds of thousands to one.

The hard requirement is **exactness**, not approximation: a macro-on run
must produce bit-identical simulated times, coarray states, collective
results, traffic counters, and resource grant counts as a macro-off run.
That drives the engagement rules:

Static eligibility (checked per arrival via :meth:`MacroCollectives.engages`)
  No monitor, no engine trace, no tiebreak RNG, no fault manager, no
  world-level trace log, ``config.macro_events`` on, and the collective
  spans the *full* image set (a sub-team window can interleave with
  images outside the team).  Data-carrying windows
  (:meth:`MacroCollectives.engages_data`) additionally require
  deterministic compute (``compute_jitter == 0`` — jitter draws
  per-image RNG streams in fine-grained resume order, which a replay
  cannot mirror).

Dynamic window check (pinned at the FIRST arrival of each invocation)
  The engine must be *globally quiet*: every pending event is one of the
  coordinator's own not-yet-fired wake events, and every machine
  resource (conduit progress engines, NICs, memory buses) is idle.  Any
  foreign in-flight work — an unfinished put, a straggler's timeout —
  pins this invocation to the fine-grained path.  The check is re-run at
  commit (last arrival), together with a resource *grant-counter*
  snapshot: if anything acquired a resource while the gather was open,
  the window is demoted.

Chained windows (sustained collapse)
  A committed window's pending wakes are pure deliveries: the replay
  released every resource, so nothing is held.  On **flat teams** (one
  image per node) every transfer also touches only its own image's
  sender-side NIC and conduit engine, so consecutive windows can never
  need the same resource out of order — a new barrier or reduction
  window may therefore open and commit *under* the previous window's
  still-pending wakes, with staggered arrivals.  This is what lets a
  back-to-back 10k-image allreduce loop stay collapsed even though
  recursive doubling's fold/unfold staggers the exit instants of each
  iteration.  Hierarchical windows keep the strict fully-quiet rule: a
  still-delivering release ladder or fan-out occupies a shared bus
  *virtually*, which a fresh replay ledger cannot see.

  Broadcast windows additionally require every arrival on the commit
  instant: a fine-grained broadcast lets early subtrees finish *before*
  late members even arrive, so a gather across staggered arrivals would
  park members past their true exit times.  Reductions have no such
  hazard — every exit transitively depends on every arrival — so they
  commit staggered windows exactly.

Sticky asynchronous disable
  Non-blocking transfers (``put_nb``/``get_nb``, event-post relays)
  complete through callback chains that the quiet-window sweep cannot
  attribute; the first one observed permanently disables macro-events
  for the rest of the run (:meth:`MacroCollectives.note_async`).

When an invocation is pinned fine or demoted, every participant runs the
ordinary fine-grained generator with the invocation sequence number (or
op tag) it already drew — team counters advance identically either way.
A demotion triggered while registrants were already parked wakes them in
arrival order; because demotion also *disables* macro-events for the run
(the quiet-window invariant was violated, so exact replay can no longer
be promised), at most one window per run can be perturbed, and only in
programs that race asynchronous traffic against a collective.

The replay itself mirrors the fine-grained cost model operation by
operation — same ``_plan``/``inject_time``/``wire_time``/``compute``
calls, same max/add structure, same combine order (deposit order at
each leader, MPICH fold/exchange order among leaders), per-resource
FIFO orderings — so the floats and values produced are the very floats
the event path would have produced (floating-point addition is
deterministic; the replay never re-associates it).  See
``docs/simulation.md`` for the full argument.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..calibration import DIRECT_SMP
from ..sim import SimEvent, Wait
from .base import NOTIFY_NBYTES, binomial_peers, combine_flops, payload_nbytes
from .reduce import _combine, _freeze

__all__ = ["MacroCollectives", "MacroBarriers", "Replayed"]

#: data-carrying window kinds (the replay also produces result values)
DATA_KINDS = ("reduce-2l", "reduce-rd", "bcast-2l")

#: window kinds :meth:`MacroCollectives.join` knows how to replay
REPLAYABLE = ("tdlb", "linear") + DATA_KINDS


class Replayed:
    """Truthy wrapper a data-carrying wake delivers its result in.

    ``join`` returning a :class:`Replayed` means "the window was replayed
    — here is your collective's return value"; returning ``False`` means
    "run the fine-grained algorithm".  Barrier call sites only test
    truthiness; reduce/broadcast call sites unwrap ``.value``.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value

    def __bool__(self) -> bool:
        return True


class _Gather:
    """One open collective invocation: who has arrived, in which mode."""

    __slots__ = ("mode", "arrivals", "events", "payloads", "meta", "passed")

    def __init__(self, mode: str):
        self.mode = mode  # "macro" | "fine"
        #: (arrival time, team index) in registration order (macro mode)
        self.arrivals: List[Tuple[float, int]] = []
        #: each registrant's private wake event, same order as arrivals
        self.events: List[SimEvent] = []
        #: each registrant's frozen contribution, same order as arrivals
        #: (None for barriers)
        self.payloads: List[Any] = []
        #: window-wide parameters (op, source image) from the first arrival
        self.meta: Dict[str, Any] = {}
        #: members seen so far (fine mode — pure pass-through bookkeeping)
        self.passed = 0


class _ReplayState:
    """Per-commit FIFO ledger of virtual resource holds.

    ``hold`` mirrors :meth:`repro.sim.Resource.occupy` arithmetic for a
    request arriving at ``t``: granted at ``max(t, previous release)``,
    released ``duration`` later.  Requests must be fed in fine-grained
    arrival order per resource; the engagement guard guarantees every
    resource starts the window idle, so the ledger starts empty.
    """

    __slots__ = ("free",)

    def __init__(self):
        self.free: Dict[object, float] = {}

    def hold(self, resource, t: float, duration: float) -> float:
        granted = self.free.get(resource, t)
        if t > granted:
            granted = t
        end = granted + duration
        self.free[resource] = end
        resource._granted += 1  # mirror the grant statistics
        return end


class MacroCollectives:
    """Per-World coordinator that gathers collective arrivals and, when
    the window is provably unobservable, replays it analytically.

    Grew out of the barrier-only ``MacroBarriers`` coordinator; the name
    is kept as an alias.  Beyond TDLB/linear barriers it now collapses
    the paper's two-level reduction, flat recursive-doubling reduction
    (on flat teams), and two-level broadcast — the full window including
    payload movement, combine compute, and the result values themselves.
    """

    def __init__(self, world):
        self.world = world
        self._gathers: Dict[tuple, _Gather] = {}
        #: wake events scheduled but not yet fired — the only pending
        #: engine events a quiet window is allowed to contain
        self._pending_wakes = 0
        #: grant-counter snapshot taken when the open gather was pinned
        self._grant_mark = 0
        #: None while live; "async" / "contention" / "stagger" once
        #: permanently off ("overlap" is set by the post-commit audit)
        self.disabled_reason: Optional[str] = None
        #: windows replayed analytically
        self.replays = 0
        #: replayed windows broken down by kind ("tdlb", "reduce-2l", ...)
        self.replays_by_kind: Dict[str, int] = {}
        #: invocations pinned to fine-grained at first arrival
        self.fine_pins = 0
        #: gathers demoted after registration began
        self.demotions = 0
        #: engine events spent on wakes (vs. fine-grained thousands)
        self.wake_events = 0
        #: True once a committed window was overlapped by foreign
        #: resource traffic (or a demotion interrupted parked
        #: registrants): macro-on times may have drifted from macro-off
        #: from that window onward.  Committing is a bet that nothing
        #: touches the fabric until the window's last delivery; this
        #: flag records a lost bet, and losing one also sets
        #: :attr:`disabled_reason` so it can happen at most once per run.
        self.inexact = False
        #: committed windows still delivering wakes, each as
        #: ``[remaining_wake_events, expected_grant_total]`` — empty when
        #: everything committed has fully delivered.  On flat teams a new
        #: window may commit *under* a previous window's wakes, so more
        #: than one can be in flight; a later commit's own replay grants
        #: are folded into every earlier window's expectation so the
        #: audit only trips on genuinely foreign traffic.
        self._active_windows: List[list] = []
        self._resources: Optional[list] = None
        self._hook_installed = False

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def engages(self, view) -> bool:
        """Static screen, checked by each barrier wrapper before joining."""
        if self.disabled_reason is not None:
            return False
        world = self.world
        if not world.config.macro_events:
            return False
        engine = world.engine
        if (
            engine.monitor is not None
            or engine._trace is not None
            or engine._tiebreak_rng is not None
        ):
            return False
        if world.faults is not None or world.trace is not None:
            return False
        if view.size <= 1 or view.size != world.num_images:
            return False
        return True

    def engages_data(self, view) -> bool:
        """Static screen for data-carrying windows (reduce/broadcast):
        everything :meth:`engages` demands, plus deterministic compute —
        ``compute_jitter`` draws a per-image RNG stream on every
        ``compute_cost``, in fine-grained resume order, which an
        analytic replay cannot mirror."""
        if not self.engages(view):
            return False
        return self.world.config.compute_jitter <= 0.0

    def _all_resources(self) -> list:
        res = self._resources
        if res is None:
            world = self.world
            res = list(world.conduit._engines)
            res.extend(world.machine.interconnect._nics)
            for node_buses in world.machine.shared_memory._buses:
                res.extend(node_buses)
            self._resources = res
        return res

    def _total_grants(self) -> int:
        return sum(r._granted for r in self._all_resources())

    def _window_clear(self, view, allow_overlap: bool) -> bool:
        """The dynamic quiet-window test, taken at first arrival.

        The engine must be quiet up to this coordinator's own pending
        wakes: every pending event is a not-yet-fired macro wake, and
        every fabric resource is idle.  Pending wakes are pure virtual
        deliveries — the replay that scheduled them released every
        resource — so a *new* window may open under them, but only when
        ``allow_overlap`` and the team is flat (one image per node).  On
        a flat team every transfer touches only its own image's
        sender-side NIC/conduit engine, so the previous window's virtual
        timeline and this window's replay can never need the same
        resource out of order.  On hierarchical teams a still-delivering
        release ladder or fan-out holds a shared bus virtually past the
        early exits, which a fresh replay ledger cannot see — so any
        pending wake pins the invocation fine, exactly as before.
        """
        if self._pending_wakes != 0:
            if not allow_overlap:
                return False
            if len(view.shared.hierarchy.leaders) != view.size:
                return False
        if self.world.engine.pending_events != self._pending_wakes:
            return False
        return all(r.idle for r in self._all_resources())

    def _commit_clear(self) -> bool:
        """Re-check at last arrival: still quiet, and nothing acquired a
        resource while the gather was open.  Wakes pending here can only
        belong to a previous window this gather was allowed to open
        under (their firing is what delivered the later arrivals)."""
        if self.world.engine.pending_events != self._pending_wakes:
            return False
        return self._total_grants() == self._grant_mark

    # ------------------------------------------------------------------
    # Sticky disables and demotion
    # ------------------------------------------------------------------
    def note_async(self) -> None:
        """Asynchronous traffic exists: disable for the run, demote any
        open gather (called by the conduit on every ``transfer_nb``)."""
        if self.disabled_reason is None:
            self.disabled_reason = "async"
        self._demote_open()

    def on_drain(self) -> bool:
        """Engine drain hook: if the queue ran dry with a gather still
        open, some member never arrived — demote so the registrants run
        the fine-grained path and produce its diagnostics (deadlock
        reports name real cells, not macro internals)."""
        return self._demote_open()

    def _demote_open(self) -> bool:
        progressed = False
        for key in list(self._gathers):
            g = self._gathers.get(key)
            if g is None or g.mode != "macro":
                continue
            del self._gathers[key]
            self.demotions += 1
            if g.events:
                # Parked registrants resume *now*, later than their
                # fine-grained arrival instants — times have drifted.
                progressed = True
                self.inexact = True
            for ev in g.events:  # arrival order
                ev.trigger(False)
        return progressed

    def _ensure_hook(self) -> None:
        if not self._hook_installed:
            self._hook_installed = True
            self.world.engine.add_drain_hook(self.on_drain)

    # ------------------------------------------------------------------
    # The gather protocol
    # ------------------------------------------------------------------
    def join(self, ctx, view, kind: str, seq, path: str = "auto",
             payload: Any = None, op: Any = None,
             source: Optional[int] = None) -> Iterator:
        """Offer this collective invocation to the macro coordinator.

        Generator driven by the arriving image's process.  ``seq`` is the
        invocation's identity within the team — the barrier sequence
        number or the data collective's already-drawn op tag.  Returns a
        truthy value (via ``yield from``) when the window was replayed —
        the collective is complete, and for data kinds the result rides
        in ``Replayed.value``.  Returns False when the invocation runs
        fine-grained (pinned, demoted, or ineligible); the caller falls
        through to the ordinary algorithm with the same ``seq``/tag it
        already drew.
        """
        if kind not in REPLAYABLE:
            return False
        if kind == "reduce-rd" and len(view.shared.hierarchy.leaders) != view.size:
            # Flat recursive doubling pairs arbitrary images; only when
            # every image owns its node are the exchange's fabric
            # resources pairwise disjoint, which frees the replay from
            # same-node bus-grant ordering it cannot predict.
            return False
        key = (view.shared.uid, kind, seq)
        g = self._gathers.get(key)
        if g is None:
            # Broadcast windows must never open under a previous
            # window's wakes: overlapped windows have staggered
            # arrivals, which a broadcast cannot commit (below), and
            # demoting parked registrants would break exactness.
            if self._window_clear(view, allow_overlap=kind != "bcast-2l"):
                g = _Gather("macro")
                g.meta = {"op": op, "source": source}
                self._ensure_hook()
                self._grant_mark = self._total_grants()
            else:
                g = _Gather("fine")
                self.fine_pins += 1
            self._gathers[key] = g
        if g.mode != "macro":
            g.passed += 1
            if g.passed >= view.size:
                self._gathers.pop(key, None)
            return False

        engine = self.world.engine
        ev = SimEvent(engine, name=f"macro:{kind}[{seq}]@{view.index}")
        g.arrivals.append((engine.now, view.index))
        g.events.append(ev)
        g.payloads.append(_freeze(payload))
        if len(g.events) == view.size:
            self._gathers.pop(key, None)
            # Broadcast windows require every arrival on the commit
            # instant: fine-grained, an early subtree finishes before a
            # late member arrives, so exits can precede the commit —
            # impossible to schedule, and the parked member resumed
            # late.  Reduce/barrier exits all depend on the last
            # arrival, so staggered windows commit exactly.
            stagger = kind == "bcast-2l" and any(
                t != engine.now for t, _ in g.arrivals
            )
            if not stagger and self._commit_clear():
                self._commit(view, kind, seq, path, g)
                # fall through: the last arriver waits on its own wake
            else:
                # The window was perturbed after registration — too late
                # for exact fine-grained timing, so never engage again.
                self.disabled_reason = "stagger" if stagger else "contention"
                self.inexact = True
                self.demotions += 1
                for other in g.events[:-1]:  # arrival order
                    other.trigger(False)
                return False
        replayed = yield Wait(ev)
        return replayed

    # ------------------------------------------------------------------
    # Commit: replay + wake scheduling + state mirroring
    # ------------------------------------------------------------------
    def _commit(self, view, kind: str, seq, path: str,
                g: _Gather) -> None:
        grants_before = self._total_grants()
        results: Optional[Dict[int, Any]] = None
        if kind == "tdlb":
            exits = self._replay_tdlb(view, seq, g.arrivals)
        elif kind == "linear":
            exits = self._replay_linear(view, seq, g.arrivals, path)
        elif kind == "reduce-2l":
            exits, results = self._replay_reduce_two_level(view, g)
        elif kind == "reduce-rd":
            exits, results = self._replay_reduce_rd(view, g)
        else:  # "bcast-2l"
            exits, results = self._replay_bcast_two_level(view, g)
        self.replays += 1
        self.replays_by_kind[kind] = self.replays_by_kind.get(kind, 0) + 1

        waiter = {index: ev for (_, index), ev in zip(g.arrivals, g.events)}
        if results is None:
            wake: Dict[int, Any] = dict.fromkeys(waiter, True)
        else:
            wake = {index: Replayed(results[index]) for index in waiter}
        groups: Dict[float, List[int]] = {}
        for t, index in exits:
            groups.setdefault(t, []).append(index)
        engine = self.world.engine
        # The commit is a bet that no foreign resource request lands
        # inside the window's (now virtual) delivery span.  Track the
        # window until its last wake and audit the grant counters there:
        # a lost bet is marked inexact and disables macro-events for the
        # rest of the run (see the module doc's exactness contract).
        # A chained window committing under this one's wakes is *not*
        # foreign — its replay grants are exact by construction — so
        # fold this replay's grants into every still-delivering
        # window's expectation before snapshotting our own.
        grants_after = self._total_grants()
        for earlier in self._active_windows:
            earlier[1] += grants_after - grants_before
        window = [len(groups), grants_after]
        self._active_windows.append(window)
        for t in sorted(groups):
            pairs = [(waiter[i], wake[i]) for i in sorted(groups[t])]
            self._pending_wakes += 1

            def fire(pairs=pairs, window=window):
                self._pending_wakes -= 1
                window[0] -= 1
                if window[0] == 0:
                    self._active_windows.remove(window)
                    if (
                        self.disabled_reason is None
                        and self._total_grants() != window[1]
                    ):
                        self.inexact = True
                        self.disabled_reason = "overlap"
                for ev, val in pairs:
                    ev.trigger(val)

            engine.schedule_at(t, fire, label="macro-wake")
        self.wake_events += len(groups)

    # -- one costed transfer, mirroring Conduit.transfer exactly --------
    def _replay_transfer(self, st: _ReplayState, src_proc: int,
                         dst_proc: int, nbytes: int, t: float,
                         path: str) -> Tuple[float, float]:
        """Return ``(source_done, delivered)`` for one message whose
        sender is free to issue it at time ``t``."""
        world = self.world
        conduit = world.conduit
        machine = world.machine
        resolved = conduit.resolve_path(src_proc, dst_proc, path)
        conduit.counts[resolved] += 1
        placements = conduit._placements
        ps = placements[src_proc]
        profile = conduit.profile

        if resolved == "remote":
            cost = profile.remote_overhead
            if cost > 0.0:
                if profile.serialize_overhead:
                    t = st.hold(conduit._engines[ps.node], t, cost)
                else:
                    t = t + cost
            ic = machine.interconnect
            ic.messages += 1
            ic.bytes += nbytes
            net = machine.spec.network
            t = st.hold(ic._nics[ps.node], t, net.inject_time(nbytes))
            return t, t + net.wire_time(nbytes)

        pd = placements[dst_proc]
        sm = machine.shared_memory
        if resolved == "loopback":
            cost = profile.local_overhead
            if cost > 0.0:
                if profile.serialize_overhead:
                    t = st.hold(conduit._engines[ps.node], t, cost)
                else:
                    t = t + cost
            sm.messages += 1
            sm.bytes += nbytes
            occ, lat, home = sm._plan(
                ps.core, pd.core, nbytes, profile.loopback_bw_factor
            )
            t = st.hold(sm._buses[ps.node][home], t, occ)
            delivered = t + lat
            if profile.loopback_penalty > 0.0:
                delivered = delivered + profile.loopback_penalty
            return t, delivered

        # direct shared-memory store
        if DIRECT_SMP.local_overhead > 0.0:
            t = t + DIRECT_SMP.local_overhead
        sm.messages += 1
        sm.bytes += nbytes
        occ, lat, home = sm._plan(ps.core, pd.core, nbytes, 1.0)
        t = st.hold(sm._buses[ps.node][home], t, occ)
        return t, t + lat

    # -- a compute_cost Timeout's span, jitter-free ---------------------
    def _compute_delay(self, flops: float) -> float:
        """The exact delay ``ctx.compute_cost(flops)`` would charge —
        same ``machine.compute`` call, so the same float.  Data windows
        only engage with ``compute_jitter == 0``, so no noise factor."""
        world = self.world
        return world.machine.compute(
            flops, efficiency=world.config.compute_efficiency
        ).delay

    # -- Algorithm 1 (barrier_tdlb) -------------------------------------
    def _replay_tdlb(self, view, seq: int,
                     arrivals: List[Tuple[float, int]]) -> List[Tuple[float, int]]:
        shared = view.shared
        h = shared.hierarchy
        proc_of = shared.proc_of
        arrive = {index: t for t, index in arrivals}
        order = {index: i for i, (_, index) in enumerate(arrivals)}
        st = _ReplayState()
        exits: List[Tuple[float, int]] = []

        # Step 1: slaves arrive at their node leader (direct stores).
        # Same-node requests contend on the leader-socket bus in the
        # order the engine would grant them: FIFO by (issue time,
        # registration order) — ties broken by who got to the bus first,
        # which on the fast path is registration (scheduling) order.
        ready: Dict[int, float] = {}
        for leader in h.leaders:
            slaves = h.slaves_of(leader)
            latest = arrive[leader]
            for s in sorted(slaves, key=lambda i: (arrive[i], order[i])):
                _, delivered = self._replay_transfer(
                    st, proc_of(s), proc_of(leader), NOTIFY_NBYTES,
                    arrive[s], "direct",
                )
                if delivered > latest:
                    latest = delivered
            if slaves:
                shared.cocounter(leader).add(len(slaves))
            ready[leader] = latest

        # Step 2: one-wait dissemination among the node leaders.
        leaders = h.leaders
        k = len(leaders)
        if k > 1:
            rounds = math.ceil(math.log2(k))
            for r in range(rounds):
                deliver: Dict[int, float] = {}
                send_done: Dict[int, float] = {}
                for rank, leader in enumerate(leaders):
                    target = leaders[(rank + (1 << r)) % k]
                    done, delivered = self._replay_transfer(
                        st, proc_of(leader), proc_of(target),
                        NOTIFY_NBYTES, ready[leader], "auto",
                    )
                    send_done[leader] = done
                    deliver[target] = delivered
                    shared.diss_flag(target, r, "tdlb-leaders").add(1)
                for leader in leaders:
                    t = send_done[leader]
                    if deliver[leader] > t:
                        t = deliver[leader]
                    ready[leader] = t

        # Step 3: each leader releases its intranode set serially.
        for leader in leaders:
            t = ready[leader]
            for s in h.slaves_of(leader):  # algorithm order: sorted
                t, delivered = self._replay_transfer(
                    st, proc_of(leader), proc_of(s), NOTIFY_NBYTES,
                    t, "direct",
                )
                shared.release_flag(s).add(1)
                exits.append((delivered, s))
            exits.append((t, leader))
        return exits

    # -- barrier_linear -------------------------------------------------
    def _replay_linear(self, view, seq: int,
                       arrivals: List[Tuple[float, int]],
                       path: str) -> List[Tuple[float, int]]:
        shared = view.shared
        proc_of = shared.proc_of
        n = view.size
        leader = 1
        arrive = {index: t for t, index in arrivals}
        order = {index: i for i, (_, index) in enumerate(arrivals)}
        st = _ReplayState()

        latest = arrive[leader]
        slaves = [i for i in range(1, n + 1) if i != leader]
        for s in sorted(slaves, key=lambda i: (arrive[i], order[i])):
            _, delivered = self._replay_transfer(
                st, proc_of(s), proc_of(leader), NOTIFY_NBYTES,
                arrive[s], path,
            )
            if delivered > latest:
                latest = delivered
        shared.cocounter(leader).add(n - 1)

        exits: List[Tuple[float, int]] = []
        t = latest
        for s in range(2, n + 1):  # algorithm order: ascending index
            t, delivered = self._replay_transfer(
                st, proc_of(leader), proc_of(s), NOTIFY_NBYTES, t, path,
            )
            shared.release_flag(s).add(1)
            exits.append((delivered, s))
        exits.append((t, leader))
        return exits

    # -- reduce._recursive_doubling among one-per-node participants -----
    def _replay_rd(self, st: _ReplayState, view, participants,
                   ready: Dict[int, float], vals: Dict[int, Any],
                   op, path: str) -> None:
        """Replay the MPICH fold/exchange/unfold allreduce among
        ``participants`` (team indices, caller's rank order).

        ``ready``/``vals`` map index → (time the participant enters the
        exchange, its accumulator); both are updated in place to the
        post-exchange state.  Participants must sit on pairwise-distinct
        nodes (node leaders, or a flat team) so senders never share a
        fabric resource — per-round issue order is then free, and only
        per-sender serialization (which the time chaining captures)
        matters.
        """
        n = len(participants)
        if n <= 1:
            return
        proc_of = view.shared.proc_of
        # combine_flops of each participant's *entry* accumulator, as the
        # fine-grained generator captures it in its ``value`` argument
        dt = {p: self._compute_delay(combine_flops(vals[p]))
              for p in participants}
        pow2 = 1 << (n.bit_length() - 1)
        if pow2 > n:
            pow2 >>= 1
        rem = n - pow2

        newrank: Dict[int, int] = {}
        for rank, p in enumerate(participants):
            if rank < 2 * rem:
                newrank[p] = rank // 2 if rank % 2 == 0 else -1
            else:
                newrank[p] = rank - rem

        # Fold: odd extras push into their even neighbour and sit out.
        for rank in range(0, 2 * rem, 2):
            even = participants[rank]
            odd = participants[rank + 1]
            done, delivered = self._replay_transfer(
                st, proc_of(odd), proc_of(even),
                payload_nbytes(vals[odd]), ready[odd], path,
            )
            t = ready[even]
            if delivered > t:
                t = delivered
            vals[even] = _combine(op, vals[even], vals[odd])
            ready[even] = t + dt[even]
            ready[odd] = done

        # Pairwise exchange rounds over the power-of-two core.
        active = [p for p in participants if newrank[p] >= 0]
        mask = 1
        while mask < pow2:
            sent_val = {p: vals[p] for p in active}
            arrived: Dict[int, Tuple[float, Any]] = {}
            for p in active:
                partner_new = newrank[p] ^ mask
                partner_rank = (
                    partner_new * 2 if partner_new < rem else partner_new + rem
                )
                partner = participants[partner_rank]
                done, delivered = self._replay_transfer(
                    st, proc_of(p), proc_of(partner),
                    payload_nbytes(sent_val[p]), ready[p], path,
                )
                ready[p] = done
                arrived[partner] = (delivered, sent_val[p])
            for p in active:
                delivered, contrib = arrived[p]
                t = ready[p]
                if delivered > t:
                    t = delivered
                vals[p] = _combine(op, vals[p], contrib)
                ready[p] = t + dt[p]
            mask <<= 1

        # Unfold: evens hand the finished value back to their odd.
        for rank in range(0, 2 * rem, 2):
            even = participants[rank]
            odd = participants[rank + 1]
            done, delivered = self._replay_transfer(
                st, proc_of(even), proc_of(odd),
                payload_nbytes(vals[even]), ready[even], path,
            )
            ready[even] = done
            t = ready[odd]
            if delivered > t:
                t = delivered
            vals[odd] = _freeze(vals[even])
            ready[odd] = t

    # -- allreduce_two_level --------------------------------------------
    def _replay_reduce_two_level(
        self, view, g: _Gather
    ) -> Tuple[List[Tuple[float, int]], Dict[int, Any]]:
        shared = view.shared
        h = shared.hierarchy
        proc_of = shared.proc_of
        arrive = {index: t for t, index in g.arrivals}
        order = {index: i for i, (_, index) in enumerate(g.arrivals)}
        base = {index: v for (_, index), v in zip(g.arrivals, g.payloads)}
        vals = dict(base)
        op = g.meta["op"]
        st = _ReplayState()

        # Intranode gather: slave contributions reach the leader's socket
        # bus in fine-grained grant order — FIFO by (issue time,
        # registration order), same rule as the TDLB replay — and the
        # leader folds them in deposit (= delivery) order after the last
        # one lands, then pays one combine timeout for the batch.
        ready: Dict[int, float] = {}
        for leader in h.leaders:
            slaves = h.slaves_of(leader)
            t = arrive[leader]
            if slaves:
                deposits: List[Tuple[float, int]] = []
                for s in sorted(slaves, key=lambda i: (arrive[i], order[i])):
                    _, delivered = self._replay_transfer(
                        st, proc_of(s), proc_of(leader),
                        payload_nbytes(base[s]), arrive[s], "direct",
                    )
                    deposits.append((delivered, s))
                    if delivered > t:
                        t = delivered
                # The leader folds in deposit (= delivery) order; with
                # staggered arrivals on a multi-bus node that can differ
                # from bus-request order.  Stable sort: same-instant
                # deliveries fire in scheduling (= request) order.
                deposits.sort(key=lambda d: d[0])
                acc = vals[leader]
                for _, s in deposits:
                    acc = _combine(op, acc, base[s])
                vals[leader] = acc
                t = t + self._compute_delay(
                    combine_flops(base[leader]) * len(slaves)
                )
            ready[leader] = t

        # Internode: recursive doubling among the node leaders.
        self._replay_rd(st, view, h.leaders, ready, vals, op, "auto")

        # Intranode fan-out: each leader pushes the result serially.
        exits: List[Tuple[float, int]] = []
        results: Dict[int, Any] = {}
        for leader in h.leaders:
            t = ready[leader]
            acc = vals[leader]
            for s in h.slaves_of(leader):
                t, delivered = self._replay_transfer(
                    st, proc_of(leader), proc_of(s),
                    payload_nbytes(acc), t, "direct",
                )
                exits.append((delivered, s))
                results[s] = _freeze(acc)
            exits.append((t, leader))
            results[leader] = acc
        return exits, results

    # -- allreduce_recursive_doubling -----------------------------------
    def _replay_reduce_rd(
        self, view, g: _Gather
    ) -> Tuple[List[Tuple[float, int]], Dict[int, Any]]:
        arrive = {index: t for t, index in g.arrivals}
        vals = {index: v for (_, index), v in zip(g.arrivals, g.payloads)}
        op = g.meta["op"]
        st = _ReplayState()
        participants = list(range(1, view.size + 1))
        ready = dict(arrive)
        self._replay_rd(st, view, participants, ready, vals, op, "auto")
        exits = [(ready[p], p) for p in participants]
        return exits, vals

    # -- bcast_two_level ------------------------------------------------
    def _replay_bcast_two_level(
        self, view, g: _Gather
    ) -> Tuple[List[Tuple[float, int]], Dict[int, Any]]:
        shared = view.shared
        h = shared.hierarchy
        proc_of = shared.proc_of
        arrive = {index: t for t, index in g.arrivals}
        base = {index: v for (_, index), v in zip(g.arrivals, g.payloads)}
        source = g.meta["source"]
        st = _ReplayState()
        leaders = h.leaders
        source_leader = h.leader_of[source]
        seed = base[source]
        nbytes = payload_nbytes(seed)
        exits: List[Tuple[float, int]] = []
        results: Dict[int, Any] = {}

        # Phase 0: a non-leader source hands the payload to its leader
        # over shared memory, then is done (it already holds the value).
        if source != source_leader:
            done, delivered = self._replay_transfer(
                st, proc_of(source), proc_of(source_leader), nbytes,
                arrive[source], "direct",
            )
            exits.append((done, source))
            results[source] = _freeze(seed)
            root_t = arrive[source_leader]
            if delivered > root_t:
                root_t = delivered
        else:
            root_t = arrive[source]

        # Phase 1: binomial tree among leaders rooted at the source's
        # leader.  Parents always carry a smaller virtual rank, so
        # walking leaders in vrank order replays sends before receives.
        num_leaders = len(leaders)
        root_rank = h.leader_rank[source_leader]
        vrank = {
            L: (h.leader_rank[L] - root_rank) % num_leaders for L in leaders
        }
        inbox: Dict[int, float] = {}
        hold_t: Dict[int, float] = {}
        for L in sorted(leaders, key=lambda L: vrank[L]):
            parent, children = binomial_peers(vrank[L], num_leaders)
            if parent is None:
                t = root_t
            else:
                t = arrive[L]
                if inbox[L] > t:
                    t = inbox[L]
            for child in children:  # largest stride first, serial sends
                target = leaders[(child + root_rank) % num_leaders]
                t, delivered = self._replay_transfer(
                    st, proc_of(L), proc_of(target), nbytes, t, "auto",
                )
                inbox[target] = delivered
            hold_t[L] = t

        # Phase 2: intranode fan-out with direct stores.
        for L in leaders:
            t = hold_t[L]
            for s in h.slaves_of(L):
                if s == source:
                    continue  # the source already holds the payload
                t, delivered = self._replay_transfer(
                    st, proc_of(L), proc_of(s), nbytes, t, "direct",
                )
                e = arrive[s]
                if delivered > e:
                    e = delivered
                exits.append((e, s))
                results[s] = _freeze(seed)
            exits.append((t, L))
            results[L] = _freeze(seed)
        return exits, results


#: historical name from the barrier-only era; kept for back-compat
MacroBarriers = MacroCollectives
