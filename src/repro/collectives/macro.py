"""Macro-events: collapsing deterministic barrier windows analytically.

A barrier over *n* images costs the engine O(n) fine-grained events —
per-slave bus holds, per-leader NIC injections, wire deliveries, release
ladders.  But when nothing can *observe or perturb* the window, those
events are pure bookkeeping: the protocol is closed-form, so every
image's exit time can be computed arithmetically and the whole window
replaced by a handful of wake events — one per distinct exit instant.
On node-symmetric teams the exit instants of different nodes coincide
exactly (identical float arithmetic), so a 1024-image TDLB barrier
collapses from thousands of engine events to roughly a dozen.

The hard requirement is **exactness**, not approximation: a macro-on run
must produce bit-identical simulated times, coarray states, traffic
counters, and resource grant counts as a macro-off run.  That drives the
engagement rules:

Static eligibility (checked per arrival via :meth:`MacroBarriers.engages`)
  No monitor, no engine trace, no tiebreak RNG, no fault manager, no
  world-level trace log, ``config.macro_events`` on, and the barrier
  spans the *full* image set (a sub-team barrier can interleave with
  images outside the team).

Dynamic window check (pinned at the FIRST arrival of each invocation)
  The engine must be *globally quiet*: every pending event is one of the
  coordinator's own not-yet-fired wake events, and every machine
  resource (conduit progress engines, NICs, memory buses) is idle.  Any
  foreign in-flight work — an unfinished put, a straggler's timeout —
  pins this invocation to the fine-grained path.  The check is re-run at
  commit (last arrival), together with a resource *grant-counter*
  snapshot: if anything acquired a resource while the gather was open,
  the window is demoted.

Sticky asynchronous disable
  Non-blocking transfers (``put_nb``/``get_nb``, event-post relays)
  complete through callback chains that the quiet-window sweep cannot
  attribute; the first one observed permanently disables macro-events
  for the rest of the run (:meth:`MacroBarriers.note_async`).

When an invocation is pinned fine or demoted, every participant runs the
ordinary fine-grained barrier generator with the invocation sequence
number it already drew — team counters advance identically either way.
A demotion triggered while registrants were already parked wakes them in
arrival order; because demotion also *disables* macro-events for the run
(the quiet-window invariant was violated, so exact replay can no longer
be promised), at most one window per run can be perturbed, and only in
programs that race asynchronous traffic against a barrier.

The replay itself mirrors the fine-grained cost model operation by
operation — same ``_plan``/``inject_time``/``wire_time`` calls, same
max/add structure, per-resource FIFO orderings — so the floats produced
are the very floats the event path would have produced (floating-point
addition is deterministic; the replay never re-associates it).  See
``docs/simulation.md`` for the full argument.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from ..calibration import DIRECT_SMP
from ..sim import SimEvent, Wait
from .base import NOTIFY_NBYTES

__all__ = ["MacroBarriers"]

#: barrier kinds :meth:`MacroBarriers.join` knows how to replay
REPLAYABLE = ("tdlb", "linear")


class _Gather:
    """One open barrier invocation: who has arrived, and in which mode."""

    __slots__ = ("mode", "arrivals", "events", "passed")

    def __init__(self, mode: str):
        self.mode = mode  # "macro" | "fine"
        #: (arrival time, team index) in registration order (macro mode)
        self.arrivals: List[Tuple[float, int]] = []
        #: each registrant's private wake event, same order as arrivals
        self.events: List[SimEvent] = []
        #: members seen so far (fine mode — pure pass-through bookkeeping)
        self.passed = 0


class _ReplayState:
    """Per-commit FIFO ledger of virtual resource holds.

    ``hold`` mirrors :meth:`repro.sim.Resource.occupy` arithmetic for a
    request arriving at ``t``: granted at ``max(t, previous release)``,
    released ``duration`` later.  Requests must be fed in fine-grained
    arrival order per resource; the engagement guard guarantees every
    resource starts the window idle, so the ledger starts empty.
    """

    __slots__ = ("free",)

    def __init__(self):
        self.free: Dict[object, float] = {}

    def hold(self, resource, t: float, duration: float) -> float:
        granted = self.free.get(resource, t)
        if t > granted:
            granted = t
        end = granted + duration
        self.free[resource] = end
        resource._granted += 1  # mirror the grant statistics
        return end


class MacroBarriers:
    """Per-World coordinator that gathers barrier arrivals and, when the
    window is provably unobservable, replays it analytically."""

    def __init__(self, world):
        self.world = world
        self._gathers: Dict[tuple, _Gather] = {}
        #: wake events scheduled but not yet fired — the only pending
        #: engine events a quiet window is allowed to contain
        self._pending_wakes = 0
        #: grant-counter snapshot taken when the open gather was pinned
        self._grant_mark = 0
        #: None while live; "async" / "contention" once permanently off
        self.disabled_reason: Optional[str] = None
        #: windows replayed analytically
        self.replays = 0
        #: invocations pinned to fine-grained at first arrival
        self.fine_pins = 0
        #: gathers demoted after registration began
        self.demotions = 0
        #: engine events spent on wakes (vs. fine-grained thousands)
        self.wake_events = 0
        #: True once a committed window was overlapped by foreign
        #: resource traffic (or a demotion interrupted parked
        #: registrants): macro-on times may have drifted from macro-off
        #: from that window onward.  Committing is a bet that nothing
        #: touches the fabric until the window's last delivery; this
        #: flag records a lost bet, and losing one also sets
        #: :attr:`disabled_reason` so it can happen at most once per run.
        self.inexact = False
        #: the committed window still delivering wakes, as
        #: ``[remaining_wake_events, grant_mark_at_commit]`` — None when
        #: everything committed has fully delivered
        self._active_window: Optional[list] = None
        self._resources: Optional[list] = None
        self._hook_installed = False

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------
    def engages(self, view) -> bool:
        """Static screen, checked by each barrier wrapper before joining."""
        if self.disabled_reason is not None:
            return False
        world = self.world
        if not world.config.macro_events:
            return False
        engine = world.engine
        if (
            engine.monitor is not None
            or engine._trace is not None
            or engine._tiebreak_rng is not None
        ):
            return False
        if world.faults is not None or world.trace is not None:
            return False
        if view.size <= 1 or view.size != world.num_images:
            return False
        return True

    def _all_resources(self) -> list:
        res = self._resources
        if res is None:
            world = self.world
            res = list(world.conduit._engines)
            res.extend(world.machine.interconnect._nics)
            for node_buses in world.machine.shared_memory._buses:
                res.extend(node_buses)
            self._resources = res
        return res

    def _total_grants(self) -> int:
        return sum(r._granted for r in self._all_resources())

    def _window_clear(self) -> bool:
        """The dynamic quiet-window test, taken at first arrival.

        The engine must be *fully* quiet: no pending events at all (not
        even this coordinator's own wakes — a previous window still
        delivering means exits are staggered, and an image registering
        here could in fine-grained execution have contended with that
        window's release ladder) and every fabric resource idle.
        """
        if self._pending_wakes != 0:
            return False
        if self.world.engine.pending_events != 0:
            return False
        return all(r.idle for r in self._all_resources())

    def _commit_clear(self) -> bool:
        """Re-check at last arrival: still quiet, and nothing acquired a
        resource while the gather was open."""
        if self._pending_wakes != 0:
            return False
        if self.world.engine.pending_events != 0:
            return False
        return self._total_grants() == self._grant_mark

    # ------------------------------------------------------------------
    # Sticky disables and demotion
    # ------------------------------------------------------------------
    def note_async(self) -> None:
        """Asynchronous traffic exists: disable for the run, demote any
        open gather (called by the conduit on every ``transfer_nb``)."""
        if self.disabled_reason is None:
            self.disabled_reason = "async"
        self._demote_open()

    def on_drain(self) -> bool:
        """Engine drain hook: if the queue ran dry with a gather still
        open, some member never arrived — demote so the registrants run
        the fine-grained path and produce its diagnostics (deadlock
        reports name real cells, not macro internals)."""
        return self._demote_open()

    def _demote_open(self) -> bool:
        progressed = False
        for key in list(self._gathers):
            g = self._gathers.get(key)
            if g is None or g.mode != "macro":
                continue
            del self._gathers[key]
            self.demotions += 1
            if g.events:
                # Parked registrants resume *now*, later than their
                # fine-grained arrival instants — times have drifted.
                progressed = True
                self.inexact = True
            for ev in g.events:  # arrival order
                ev.trigger(False)
        return progressed

    def _ensure_hook(self) -> None:
        if not self._hook_installed:
            self._hook_installed = True
            self.world.engine.add_drain_hook(self.on_drain)

    # ------------------------------------------------------------------
    # The gather protocol
    # ------------------------------------------------------------------
    def join(self, ctx, view, kind: str, seq: int,
             path: str = "auto") -> Iterator:
        """Offer this barrier invocation to the macro coordinator.

        Generator driven by the arriving image's process.  Returns True
        (via ``yield from``) when the window was replayed — the barrier
        is complete and the caller must return.  Returns False when the
        invocation runs fine-grained (pinned, demoted, or ineligible);
        the caller falls through to the ordinary algorithm with the same
        ``seq`` it already drew.
        """
        if kind not in REPLAYABLE:
            return False
        key = (view.shared.uid, kind, seq)
        g = self._gathers.get(key)
        if g is None:
            if self._window_clear():
                g = _Gather("macro")
                self._ensure_hook()
                self._grant_mark = self._total_grants()
            else:
                g = _Gather("fine")
                self.fine_pins += 1
            self._gathers[key] = g
        if g.mode != "macro":
            g.passed += 1
            if g.passed >= view.size:
                self._gathers.pop(key, None)
            return False

        engine = self.world.engine
        ev = SimEvent(engine, name=f"macro:{kind}[{seq}]@{view.index}")
        g.arrivals.append((engine.now, view.index))
        g.events.append(ev)
        if len(g.events) == view.size:
            self._gathers.pop(key, None)
            if self._commit_clear():
                self._commit(view, kind, seq, path, g)
                # fall through: the last arriver waits on its own wake
            else:
                # The window was perturbed after registration — too late
                # for exact fine-grained timing, so never engage again.
                self.disabled_reason = "contention"
                self.inexact = True
                self.demotions += 1
                for other in g.events[:-1]:  # arrival order
                    other.trigger(False)
                return False
        replayed = yield Wait(ev)
        return bool(replayed)

    # ------------------------------------------------------------------
    # Commit: replay + wake scheduling + state mirroring
    # ------------------------------------------------------------------
    def _commit(self, view, kind: str, seq: int, path: str,
                g: _Gather) -> None:
        if kind == "tdlb":
            exits = self._replay_tdlb(view, seq, g.arrivals)
        else:
            exits = self._replay_linear(view, seq, g.arrivals, path)
        self.replays += 1

        waiter = {index: ev for (_, index), ev in zip(g.arrivals, g.events)}
        groups: Dict[float, List[int]] = {}
        for t, index in exits:
            groups.setdefault(t, []).append(index)
        engine = self.world.engine
        # The commit is a bet that no foreign resource request lands
        # inside the window's (now virtual) delivery span.  Track the
        # window until its last wake and audit the grant counters there:
        # a lost bet is marked inexact and disables macro-events for the
        # rest of the run (see the module doc's exactness contract).
        window = [len(groups), self._total_grants()]
        self._active_window = window
        for t in sorted(groups):
            events = [waiter[i] for i in sorted(groups[t])]
            self._pending_wakes += 1

            def fire(events=events, window=window):
                self._pending_wakes -= 1
                window[0] -= 1
                if window[0] == 0:
                    self._active_window = None
                    if (
                        self.disabled_reason is None
                        and self._total_grants() != window[1]
                    ):
                        self.inexact = True
                        self.disabled_reason = "overlap"
                for ev in events:
                    ev.trigger(True)

            engine.schedule_at(t, fire, label="macro-wake")
        self.wake_events += len(groups)

    # -- one costed transfer, mirroring Conduit.transfer exactly --------
    def _replay_transfer(self, st: _ReplayState, src_proc: int,
                         dst_proc: int, nbytes: int, t: float,
                         path: str) -> Tuple[float, float]:
        """Return ``(source_done, delivered)`` for one notification whose
        sender is free to issue it at time ``t``."""
        world = self.world
        conduit = world.conduit
        machine = world.machine
        resolved = conduit.resolve_path(src_proc, dst_proc, path)
        conduit.counts[resolved] += 1
        placements = conduit._placements
        ps = placements[src_proc]
        profile = conduit.profile

        if resolved == "remote":
            cost = profile.remote_overhead
            if cost > 0.0:
                if profile.serialize_overhead:
                    t = st.hold(conduit._engines[ps.node], t, cost)
                else:
                    t = t + cost
            ic = machine.interconnect
            ic.messages += 1
            ic.bytes += nbytes
            net = machine.spec.network
            t = st.hold(ic._nics[ps.node], t, net.inject_time(nbytes))
            return t, t + net.wire_time(nbytes)

        pd = placements[dst_proc]
        sm = machine.shared_memory
        if resolved == "loopback":
            cost = profile.local_overhead
            if cost > 0.0:
                if profile.serialize_overhead:
                    t = st.hold(conduit._engines[ps.node], t, cost)
                else:
                    t = t + cost
            sm.messages += 1
            sm.bytes += nbytes
            occ, lat, home = sm._plan(
                ps.core, pd.core, nbytes, profile.loopback_bw_factor
            )
            t = st.hold(sm._buses[ps.node][home], t, occ)
            delivered = t + lat
            if profile.loopback_penalty > 0.0:
                delivered = delivered + profile.loopback_penalty
            return t, delivered

        # direct shared-memory store
        if DIRECT_SMP.local_overhead > 0.0:
            t = t + DIRECT_SMP.local_overhead
        sm.messages += 1
        sm.bytes += nbytes
        occ, lat, home = sm._plan(ps.core, pd.core, nbytes, 1.0)
        t = st.hold(sm._buses[ps.node][home], t, occ)
        return t, t + lat

    # -- Algorithm 1 (barrier_tdlb) -------------------------------------
    def _replay_tdlb(self, view, seq: int,
                     arrivals: List[Tuple[float, int]]) -> List[Tuple[float, int]]:
        shared = view.shared
        h = shared.hierarchy
        proc_of = shared.proc_of
        arrive = {index: t for t, index in arrivals}
        order = {index: i for i, (_, index) in enumerate(arrivals)}
        st = _ReplayState()
        exits: List[Tuple[float, int]] = []

        # Step 1: slaves arrive at their node leader (direct stores).
        # Same-node requests contend on the leader-socket bus in the
        # order the engine would grant them: FIFO by (issue time,
        # registration order) — ties broken by who got to the bus first,
        # which on the fast path is registration (scheduling) order.
        ready: Dict[int, float] = {}
        for leader in h.leaders:
            slaves = h.slaves_of(leader)
            latest = arrive[leader]
            for s in sorted(slaves, key=lambda i: (arrive[i], order[i])):
                _, delivered = self._replay_transfer(
                    st, proc_of(s), proc_of(leader), NOTIFY_NBYTES,
                    arrive[s], "direct",
                )
                if delivered > latest:
                    latest = delivered
            if slaves:
                shared.cocounter(leader).add(len(slaves))
            ready[leader] = latest

        # Step 2: one-wait dissemination among the node leaders.
        leaders = h.leaders
        k = len(leaders)
        if k > 1:
            rounds = math.ceil(math.log2(k))
            for r in range(rounds):
                deliver: Dict[int, float] = {}
                send_done: Dict[int, float] = {}
                for rank, leader in enumerate(leaders):
                    target = leaders[(rank + (1 << r)) % k]
                    done, delivered = self._replay_transfer(
                        st, proc_of(leader), proc_of(target),
                        NOTIFY_NBYTES, ready[leader], "auto",
                    )
                    send_done[leader] = done
                    deliver[target] = delivered
                    shared.diss_flag(target, r, "tdlb-leaders").add(1)
                for leader in leaders:
                    t = send_done[leader]
                    if deliver[leader] > t:
                        t = deliver[leader]
                    ready[leader] = t

        # Step 3: each leader releases its intranode set serially.
        for leader in leaders:
            t = ready[leader]
            for s in h.slaves_of(leader):  # algorithm order: sorted
                t, delivered = self._replay_transfer(
                    st, proc_of(leader), proc_of(s), NOTIFY_NBYTES,
                    t, "direct",
                )
                shared.release_flag(s).add(1)
                exits.append((delivered, s))
            exits.append((t, leader))
        return exits

    # -- barrier_linear -------------------------------------------------
    def _replay_linear(self, view, seq: int,
                       arrivals: List[Tuple[float, int]],
                       path: str) -> List[Tuple[float, int]]:
        shared = view.shared
        proc_of = shared.proc_of
        n = view.size
        leader = 1
        arrive = {index: t for t, index in arrivals}
        order = {index: i for i, (_, index) in enumerate(arrivals)}
        st = _ReplayState()

        latest = arrive[leader]
        slaves = [i for i in range(1, n + 1) if i != leader]
        for s in sorted(slaves, key=lambda i: (arrive[i], order[i])):
            _, delivered = self._replay_transfer(
                st, proc_of(s), proc_of(leader), NOTIFY_NBYTES,
                arrive[s], path,
            )
            if delivered > latest:
                latest = delivered
        shared.cocounter(leader).add(n - 1)

        exits: List[Tuple[float, int]] = []
        t = latest
        for s in range(2, n + 1):  # algorithm order: ascending index
            t, delivered = self._replay_transfer(
                st, proc_of(leader), proc_of(s), NOTIFY_NBYTES, t, path,
            )
            shared.release_flag(s).add(1)
            exits.append((delivered, s))
        exits.append((t, leader))
        return exits
