"""Shared-memory-window collectives (the hybrid MPI+MPI family).

The paper's two-level methodology still moves every intranode byte as a
*message* through the node leader: slaves put contributions into the
leader's mailbox and the leader pushes the result back out one slave at
a time — a serialized fan-out at the leader even though everyone shares
the same physical memory.  The closest modern competitor (Zhou et al.,
arXiv 2007.06892 / 2007.11496) instead allocates a **node-shared
window** per team: intranode members load and store window slots
directly and synchronize on node-local flags, so there are no intranode
message hops at all, and only the inter-node exchange goes through the
conduit.

Mapping onto this repo's machine model
(:mod:`repro.machine.memnode` — per-socket memory controllers,
destination-socket homing, ``src_core == dst_core`` degenerates to a
memcpy):

* a **window store** of my own slot is a ``direct`` self-transfer
  (``me → me``): it occupies *my* socket's controller, so the stores of
  slaves on different sockets proceed in parallel — unlike two-level's
  mailbox puts, which all home on the leader's socket;
* a **window load** of another member's slot is a ``direct`` transfer
  ``owner → me`` issued from the *reader's* process: concurrent readers
  serialize only on their own sockets' controllers, never on the
  leader;
* the leader's **fan-in combine** is one contiguous sweep over the
  window — a single self-transfer of the aggregate slot bytes (one bus
  grant plus the streamed bandwidth term) instead of one bus grant per
  contribution;
* the **release** is one store to a single node-shared flag cell whose
  monotonic counter carries across invocations (``v >= seq``, the
  paper's one-wait discipline) — every waiter wakes off that one store
  and pays its own observe-load, where TDLB's leader pays a serialized
  notification per slave.

The inter-node phase reuses the proven machinery: one-wait
dissemination for the barrier, MPICH recursive doubling for the
reduction, a binomial tree over leaders for the broadcast.

Flags that are bumped only *conditionally* (a broadcast seed when the
source is not its node's leader, a release on nodes that have readers
this call) carry their own invocation counters, advanced only on the
calls that bump them — every member can evaluate the condition from
SPMD-uniform arguments, so the counters stay consistent across images
and the one-wait carry never skews.

None of these functions ever joins a macro-event window — they register
with ``macro_kind=None`` and always run fine-grained, which is exactly
the graceful fine-pinning the registry capability map encodes.  All
blocking goes through :func:`~repro.faults.manager.wait_or_fail`, so
failed window peers surface as ``STAT_FAILED_IMAGE`` at the next
collective like every other algorithm family.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..faults.manager import wait_or_fail
from ..teams.team import TeamView
from .base import (
    NOTIFY_NBYTES,
    binomial_peers,
    combine_flops,
    dissemination_rounds,
    payload_nbytes,
)
from .broadcast import _check_source
from .reduce import (
    _combine,
    _freeze,
    _recursive_doubling,
    _send_value,
    _wait_values,
)

__all__ = ["barrier_shmwin", "allreduce_shmwin", "bcast_shmwin"]


# ----------------------------------------------------------------------
# Window primitives
# ----------------------------------------------------------------------
def _win_store(ctx, view: TeamView, nbytes: int, on_visible=None) -> Iterator:
    """Store ``nbytes`` into my own window slot: a direct self-transfer,
    homed on *my* socket's controller (parallel across sockets)."""
    yield from ctx.conduit.transfer(
        view.proc, view.proc, nbytes, on_delivered=on_visible, path="direct"
    )


def _win_load(ctx, view: TeamView, owner_index: int, nbytes: int) -> Iterator:
    """Load ``nbytes`` from member ``owner_index``'s window slot, issued
    from (and charged to) the reading image's timeline."""
    owner = view.shared.proc_of(owner_index)
    yield from ctx.conduit.transfer(owner, view.proc, nbytes, path="direct")


def _node_flag(view: TeamView, leader: int, variant: str):
    """The node-shared flag cell of ``leader``'s window, namespaced by
    ``variant`` (the generic counter store TeamShared already provides)."""
    return view.shared.diss_flag(leader, 0, variant)


# ----------------------------------------------------------------------
# Barrier
# ----------------------------------------------------------------------
def barrier_shmwin(ctx, view: TeamView) -> Iterator:
    """Window barrier: intranode arrival/release on node-shared flags,
    inter-node one-wait dissemination among the leaders.

    A slave stores its arrival flag into the window (self-transfer) and
    blocks on the *single* node release cell; the leader, once everyone
    has arrived, runs the leader dissemination and then releases the
    whole node with **one** store — the fan-out TDLB serializes into
    ``len(slaves)`` notifications collapses to a store plus parallel
    observe-loads.
    """
    seq = view.next_seq("shmwin")
    if view.size == 1:
        return
    shared = view.shared
    h = shared.hierarchy
    me = view.index
    leader = h.leader_of[me]
    arrive = _node_flag(view, leader, "shmwin-arr")
    release = _node_flag(view, leader, "shmwin-rel")

    if me != leader:
        yield from _win_store(ctx, view, NOTIFY_NBYTES,
                              on_visible=lambda: arrive.add(1))
        yield from wait_or_fail(ctx, view, release, lambda v, s=seq: v >= s)
        # the coherence-miss pull of the release line, paid in parallel
        # by every waiter on its own socket
        yield from _win_load(ctx, view, leader, NOTIFY_NBYTES)
        return

    slaves = h.slaves_of(me)
    if slaves:
        yield from wait_or_fail(
            ctx, view, arrive, lambda v, s=seq * len(slaves): v >= s
        )
    yield from dissemination_rounds(
        ctx, view, h.leaders, variant="shmwin-leaders", seq=seq, path="auto"
    )
    if slaves:
        yield from _win_store(ctx, view, NOTIFY_NBYTES,
                              on_visible=lambda: release.add(1))


# ----------------------------------------------------------------------
# Reduction
# ----------------------------------------------------------------------
def allreduce_shmwin(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None,
) -> Iterator:
    """Window allreduce (rooted reduce via ``result_image``).

    Intranode fan-in: every slave stores its contribution into its own
    window slot (parallel across sockets) and bumps the node arrival
    flag; the leader sweeps the whole window once — a single aggregate
    self-transfer — and combines in slot-index order (deterministic, so
    double runs are bit-identical).  Leaders then run recursive doubling
    across nodes, store the result into the window **once**, and release
    the node; every reader loads the result itself, serialized only by
    its own socket's controller.
    """
    _combine(op, value, value)  # validate op early, uniformly on all images
    tag = view.next_op_tag("red-shmwin")
    seq = view.next_seq("shmwin-red")
    n = view.size
    if n == 1:
        return _freeze(value)
    shared = view.shared
    h = shared.hierarchy
    me = view.index
    leader = h.leader_of[me]
    arrive = _node_flag(view, leader, "shmwin-red-arr")
    release = _node_flag(view, leader, "shmwin-red-rel")
    nbytes = payload_nbytes(value)

    # The readers of this node's result slot — SPMD-uniform within the
    # node, so the conditional release counter stays consistent.
    slaves = h.slaves_of(leader)
    if result_image is None:
        readers: List[int] = slaves
    else:
        readers = [result_image] if result_image in slaves else []
    rel_seq = view.next_seq("shmwin-red-rel") if readers else None

    if me != leader:
        contribution = _freeze(value)
        yield from _win_store(
            ctx, view, nbytes,
            on_visible=lambda: (shared.win_put((tag, me), contribution, 1),
                                arrive.add(1)),
        )
        if me not in readers:
            return None
        yield from wait_or_fail(ctx, view, release,
                                lambda v, s=rel_seq: v >= s)
        yield from _win_load(ctx, view, leader,
                             shared.win_peek_nbytes((tag, "result", leader)))
        result = shared.win_take((tag, "result", leader))
        if result_image is not None and me != result_image:
            return None
        return result

    acc = _freeze(value)
    if slaves:
        yield from wait_or_fail(
            ctx, view, arrive, lambda v, s=seq * len(slaves): v >= s
        )
        # One contiguous sweep over the node window: a single bus grant
        # plus the streamed bandwidth term for all slots together.
        yield from _win_store(ctx, view, nbytes * len(slaves))
        for slave in slaves:
            acc = _combine(op, acc, shared.win_take((tag, slave)))
        yield ctx.compute_cost(combine_flops(value) * len(slaves))

    acc = yield from _recursive_doubling(
        ctx, view, h.leaders, acc, op, tag + ("lead",), path="auto"
    )

    if readers:
        yield from _win_store(
            ctx, view, payload_nbytes(acc),
            on_visible=lambda r=acc: (
                shared.win_put((tag, "result", leader), r, len(readers)),
                release.add(1)),
        )
    if result_image is not None and me != result_image:
        return None
    return acc


# ----------------------------------------------------------------------
# Broadcast
# ----------------------------------------------------------------------
def bcast_shmwin(
    ctx, view: TeamView, value: Any, source_image: int
) -> Iterator:
    """Window broadcast: the payload crosses each node boundary once
    (binomial tree over leaders, as in two-level), then lands in the
    node window with a **single** store per node — every intranode
    member loads its own copy in parallel instead of waiting in the
    leader's serialized fan-out queue.
    """
    _check_source(view, source_image)
    tag = view.next_op_tag("bc-shmwin")
    n = view.size
    me = view.index
    if n == 1:
        return _freeze(value)
    shared = view.shared
    h = shared.hierarchy
    my_leader = h.leader_of[me]
    source_leader = h.leader_of[source_image]
    leaders = h.leaders
    lead_tag = tag + ("lead",)
    release = _node_flag(view, my_leader, "shmwin-bc-rel")

    # Conditional one-wait carries: the seed flag is bumped only when the
    # source is not its node's leader, a node's release only when it has
    # readers this call — both conditions are SPMD-uniform, so every
    # image advances the same counters on the same calls.
    seed_seq = (view.next_seq("shmwin-bc-seed")
                if source_image != source_leader else None)
    my_readers = [s for s in h.slaves_of(my_leader) if s != source_image]
    rel_seq = (view.next_seq("shmwin-bc-rel")
               if my_readers else None)

    # Phase 0: a non-leader source publishes the payload in the window
    # (one store) and bumps the seed flag its leader waits on.
    if me == source_image and my_leader != me:
        seed = _node_flag(view, my_leader, "shmwin-bc-seed")
        payload = _freeze(value)
        yield from _win_store(
            ctx, view, payload_nbytes(value),
            on_visible=lambda: (shared.win_put((tag, "seed"), payload, 1),
                                seed.add(1)),
        )

    if me == my_leader:
        # Phase 1: binomial tree among leaders, rooted at the source's.
        if me == source_leader:
            if me == source_image:
                payload = _freeze(value)
            else:
                seed = _node_flag(view, me, "shmwin-bc-seed")
                yield from wait_or_fail(ctx, view, seed,
                                        lambda v, s=seed_seq: v >= s)
                yield from _win_load(ctx, view, source_image,
                                     shared.win_peek_nbytes((tag, "seed")))
                payload = shared.win_take((tag, "seed"))
        else:
            payload = None
        num_leaders = len(leaders)
        root_rank = h.leader_rank[source_leader]
        vrank = (h.leader_rank[me] - root_rank) % num_leaders
        parent, children = binomial_peers(vrank, num_leaders)
        if parent is not None:
            got = yield from _wait_values(ctx, view, lead_tag, 1)
            payload = got[0]
        for child in children:
            target = leaders[(child + root_rank) % num_leaders]
            yield from _send_value(ctx, view, target, lead_tag, payload,
                                   path="auto")
        # Phase 2: one window store releases the whole node.
        if my_readers:
            yield from _win_store(
                ctx, view, payload_nbytes(payload),
                on_visible=lambda p=payload: (
                    shared.win_put((tag, "out", my_leader), p, len(my_readers)),
                    release.add(1)),
            )
        return payload

    # Non-leader images: the source already holds the payload; everyone
    # else waits on the node release flag and loads its own copy.
    if me == source_image:
        return _freeze(value)
    yield from wait_or_fail(ctx, view, release, lambda v, s=rel_seq: v >= s)
    yield from _win_load(ctx, view, my_leader,
                         shared.win_peek_nbytes((tag, "out", my_leader)))
    return shared.win_take((tag, "out", my_leader))
