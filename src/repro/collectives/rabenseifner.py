"""Rabenseifner's allreduce: reduce-scatter + allgather.

The bandwidth-optimal large-message algorithm (MPICH's choice above the
rendezvous threshold): recursive *halving* scatters reduced segments so
every round moves half the previous payload — total traffic
``2·(n−1)/n·size`` per image versus recursive doubling's
``log₂(n)·size`` — then recursive doubling gathers the segments back.

Included as the large-payload member of the reduction family: the E12
ablation locates the crossover where it overtakes both recursive
doubling and the paper's two-level algorithm, closing the strategy map
(latency-bound → two-level; bandwidth-bound → Rabenseifner).

Array payloads only (segments must be sliceable); scalars fall back to
recursive doubling, matching real MPI's size-based dispatch.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from ..teams.team import TeamView
from .reduce import (
    REDUCE_OPS,
    _combine,
    _recursive_doubling,
    _send_value,
    _wait_values,
)
from .base import combine_flops

__all__ = ["allreduce_rabenseifner"]


def _chunk_bounds(size: int, pow2: int) -> List[Tuple[int, int]]:
    """Split [0, size) into pow2 contiguous chunks (first ones larger)."""
    bounds = []
    base, extra = divmod(size, pow2)
    lo = 0
    for i in range(pow2):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def allreduce_rabenseifner(
    ctx, view: TeamView, value: Any, op: str = "sum",
    result_image: Optional[int] = None, path: str = "auto",
) -> Iterator:
    """Reduce-scatter + allgather allreduce over the whole team."""
    _combine(op, value, value)  # validate op uniformly
    n = view.size
    arr = np.asarray(value)
    if n == 1:
        out = arr.copy()
        return out if isinstance(value, np.ndarray) else value
    if arr.ndim == 0 or arr.size < n or op == "maxloc":
        # too small to segment (or a pairwise-semantic op whose payload
        # cannot be sliced): the latency-bound regime anyway
        if op == "maxloc":
            arr = None  # keep the original pair payload below
        tag = view.next_op_tag("red-rab-small")
        participants = list(range(1, n + 1))
        result = yield from _recursive_doubling(
            ctx, view, participants, value, op, tag, path=path)
        if result_image is not None and view.index != result_image:
            return None
        return result

    tag = view.next_op_tag("red-rab")
    rank = view.index - 1
    pow2 = 1 << (n.bit_length() - 1)
    rem = n - pow2
    acc = arr.astype(arr.dtype, copy=True)

    # ---- fold the extras into the power-of-two core ---------------------
    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from _send_value(ctx, view, rank, tag + ("fold", rank),
                                   acc, path=path)
        else:
            got = yield from _wait_values(ctx, view, tag + ("fold", rank + 1), 1)
            acc = _combine(op, acc, got[0])
            yield ctx.compute_cost(combine_flops(acc))
            newrank = rank // 2
    else:
        newrank = rank - rem

    def real_rank(new: int) -> int:
        return new * 2 if new < rem else new + rem

    chunks = _chunk_bounds(arr.size, pow2)
    flat = acc.reshape(-1) if newrank >= 0 else None

    if newrank >= 0:
        # ---- reduce-scatter by recursive halving -------------------------
        send_idx, last_idx = 0, pow2
        mask = pow2 >> 1
        step = 0
        while mask > 0:
            partner_new = newrank ^ mask
            partner = real_rank(partner_new) + 1
            mid = (send_idx + last_idx) // 2
            if newrank < partner_new:
                send_lo, send_hi = mid, last_idx
                keep_lo, keep_hi = send_idx, mid
            else:
                send_lo, send_hi = send_idx, mid
                keep_lo, keep_hi = mid, last_idx
            a = chunks[send_lo][0]
            b = chunks[send_hi - 1][1]
            yield from _send_value(
                ctx, view, partner, tag + ("rs", step, partner_new),
                flat[a:b].copy(), path=path,
            )
            got = yield from _wait_values(
                ctx, view, tag + ("rs", step, newrank), 1)
            ka = chunks[keep_lo][0]
            kb = chunks[keep_hi - 1][1]
            flat[ka:kb] = _combine(op, flat[ka:kb], got[0])
            yield ctx.compute_cost(kb - ka)
            send_idx, last_idx = keep_lo, keep_hi
            mask >>= 1
            step += 1

        # ---- allgather by recursive doubling ------------------------------
        mask = 1
        step = 0
        while mask < pow2:
            partner_new = newrank ^ mask
            partner = real_rank(partner_new) + 1
            a = chunks[send_idx][0]
            b = chunks[last_idx - 1][1]
            yield from _send_value(
                ctx, view, partner, tag + ("ag", step, partner_new),
                (send_idx, last_idx, flat[a:b].copy()), path=path,
            )
            got = yield from _wait_values(
                ctx, view, tag + ("ag", step, newrank), 1)
            o_lo, o_hi, data = got[0]
            flat[chunks[o_lo][0]:chunks[o_hi - 1][1]] = data
            send_idx = min(send_idx, o_lo)
            last_idx = max(last_idx, o_hi)
            mask <<= 1
            step += 1
        acc = flat.reshape(arr.shape)

    # ---- unfold to the extras -------------------------------------------
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from _send_value(ctx, view, rank + 2,
                                   tag + ("unfold", rank + 1), acc, path=path)
        else:
            got = yield from _wait_values(ctx, view, tag + ("unfold", rank), 1)
            acc = got[0]

    if result_image is not None and view.index != result_image:
        return None
    return acc
