"""One-to-all broadcast (``co_broadcast``) algorithms.

* :func:`bcast_linear_flat` — source pushes to every other image
  serially; the naive baseline.
* :func:`bcast_binomial_flat` — classic binomial tree over the whole
  team (ranks rotated so the source is the root), hierarchy-unaware:
  tree edges cross nodes arbitrarily and same-node hops pay the conduit
  loopback on an unaware runtime.
* :func:`bcast_two_level` — the paper's methodology: the payload travels
  the interconnect only between node leaders (binomial tree over
  leaders), then fans out inside each node with direct shared-memory
  copies.  Up to ~3× over the flat tree in the paper's runs.

All functions return the broadcast value at every image.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..teams.team import TeamView
from .base import binomial_peers
from .reduce import _send_value, _wait_values

__all__ = ["bcast_linear_flat", "bcast_binomial_flat", "bcast_two_level"]


def _freeze(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


def _check_source(view: TeamView, source_image: int) -> None:
    if not 1 <= source_image <= view.size:
        raise ValueError(
            f"source_image {source_image} out of range [1, {view.size}]"
        )


def bcast_linear_flat(
    ctx, view: TeamView, value: Any, source_image: int, path: str = "auto"
) -> Iterator:
    """Source sends to all n−1 others back-to-back (serialized at source)."""
    _check_source(view, source_image)
    tag = view.next_op_tag("bc-lin")
    n = view.size
    me = view.index
    if n == 1:
        return _freeze(value)
    if me == source_image:
        payload = _freeze(value)
        for target in range(1, n + 1):
            if target != me:
                yield from _send_value(ctx, view, target, tag, payload, path=path)
        return payload
    got = yield from _wait_values(ctx, view, tag, 1)
    return got[0]


def bcast_binomial_flat(
    ctx, view: TeamView, value: Any, source_image: int, path: str = "auto"
) -> Iterator:
    """Binomial tree over the whole team, root at ``source_image``."""
    _check_source(view, source_image)
    tag = view.next_op_tag("bc-bin")
    n = view.size
    me = view.index
    if n == 1:
        return _freeze(value)
    vrank = (me - source_image) % n
    parent, children = binomial_peers(vrank, n)
    if parent is None:
        payload = _freeze(value)
    else:
        got = yield from _wait_values(ctx, view, tag, 1)
        payload = got[0]
    for child in children:
        target = (child + source_image - 1) % n + 1
        yield from _send_value(ctx, view, target, tag, payload, path=path)
    return payload


def bcast_two_level(
    ctx, view: TeamView, value: Any, source_image: int
) -> Iterator:
    """§IV methodology applied to broadcast.

    The source's node leader becomes the root of a binomial tree over
    node leaders (inter-node payload movement happens exactly once per
    receiving node); each leader then copies to its intranode set with
    direct stores.  If the source is not its node's leader it first hands
    the payload to the leader over shared memory.
    """
    _check_source(view, source_image)
    tag = view.next_op_tag("bc-2l")
    n = view.size
    me = view.index
    if n == 1:
        return _freeze(value)
    macro = getattr(ctx, "macro", None)
    if macro is not None and macro.engages_data(view):
        replayed = yield from macro.join(
            ctx, view, "bcast-2l", tag, payload=value, source=source_image
        )
        if replayed:
            return replayed.value
    h = view.shared.hierarchy
    my_leader = h.leader_of[me]
    source_leader = h.leader_of[source_image]
    leaders = h.leaders
    lead_tag = tag + ("lead",)
    fan_tag = tag + ("fan",)

    # Phase 0: source hands off to its node leader if needed.
    if me == source_image and my_leader != me:
        yield from _send_value(ctx, view, my_leader, lead_tag + ("seed",),
                               _freeze(value), path="direct")

    if me == my_leader:
        # Phase 1: binomial tree among leaders, rooted at the source's leader.
        if me == source_leader:
            if me == source_image:
                payload = _freeze(value)
            else:
                got = yield from _wait_values(ctx, view, lead_tag + ("seed",), 1)
                payload = got[0]
        else:
            payload = None
        num_leaders = len(leaders)
        root_rank = h.leader_rank[source_leader]
        vrank = (h.leader_rank[me] - root_rank) % num_leaders
        parent, children = binomial_peers(vrank, num_leaders)
        if parent is not None:
            got = yield from _wait_values(ctx, view, lead_tag, 1)
            payload = got[0]
        for child in children:
            target = leaders[(child + root_rank) % num_leaders]
            yield from _send_value(ctx, view, target, lead_tag, payload, path="auto")
        # Phase 2: intranode fan-out with direct stores.
        for slave in h.slaves_of(me):
            if slave == source_image:
                continue  # the source already holds the payload
            yield from _send_value(ctx, view, slave, fan_tag, payload, path="direct")
        return payload

    # Non-leader, non-source images wait for their leader's copy.
    if me == source_image:
        return _freeze(value)
    got = yield from _wait_values(ctx, view, fan_tag, 1)
    return got[0]
