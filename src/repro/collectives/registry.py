"""Strategy registries mapping config names to collective implementations.

The runtime config names a strategy per operation
(:class:`repro.runtime.config.RuntimeConfig`); the context resolves it
here.  Registering by name keeps benchmark definitions declarative — a
comparison line in the harness is just a config with different strings.
"""

from __future__ import annotations

from .barrier import (
    barrier_dissemination,
    barrier_dissemination_mcs,
    barrier_dissemination_twowait,
    barrier_linear,
    barrier_tdlb,
    barrier_tdlb_numa,
    barrier_tournament,
)
from .broadcast import bcast_binomial_flat, bcast_linear_flat, bcast_two_level
from .alltoall import (
    alltoall_linear_flat,
    alltoall_pairwise_flat,
    alltoall_two_level,
)
from .gather import (
    allgather_bruck_flat,
    allgather_linear_flat,
    allgather_two_level,
)
from .rabenseifner import allreduce_rabenseifner
from .reduce import (
    allreduce_binomial_flat,
    allreduce_three_level,
    allreduce_linear_flat,
    allreduce_recursive_doubling,
    allreduce_two_level,
)

__all__ = ["BARRIERS", "REDUCTIONS", "BROADCASTS", "ALLGATHERS",
           "ALLTOALLS", "MACRO_CAPABLE", "macro_kind", "resolve"]

#: strategies the macro-event coordinator can collapse, mapped to the
#: window kind they join with (:data:`repro.collectives.macro.REPLAYABLE`).
#: Benchmarks and the extreme-scale sweep consult this to assert that a
#: configured strategy actually macro-izes before betting a 100k-image
#: run on it.
MACRO_CAPABLE = {
    ("barrier", "tdlb"): "tdlb",
    ("barrier", "linear"): "linear",
    ("reduce", "two-level"): "reduce-2l",
    ("reduce", "recursive-doubling"): "reduce-rd",
    ("broadcast", "two-level"): "bcast-2l",
}


def macro_kind(kind: str, name: str):
    """The macro window kind strategy ``name`` joins with, or None when
    the strategy always runs fine-grained."""
    return MACRO_CAPABLE.get((kind, name))

BARRIERS = {
    "dissemination": barrier_dissemination,
    "dissemination-mcs": barrier_dissemination_mcs,
    "dissemination-twowait": barrier_dissemination_twowait,
    "linear": barrier_linear,
    "tournament": barrier_tournament,
    "tdlb": barrier_tdlb,
    "tdlb-numa": barrier_tdlb_numa,
}

REDUCTIONS = {
    "linear-flat": allreduce_linear_flat,
    "binomial-flat": allreduce_binomial_flat,
    "recursive-doubling": allreduce_recursive_doubling,
    "rabenseifner": allreduce_rabenseifner,
    "two-level": allreduce_two_level,
    "three-level": allreduce_three_level,
}

BROADCASTS = {
    "linear-flat": bcast_linear_flat,
    "binomial-flat": bcast_binomial_flat,
    "two-level": bcast_two_level,
}

ALLGATHERS = {
    "linear-flat": allgather_linear_flat,
    "bruck-flat": allgather_bruck_flat,
    "two-level": allgather_two_level,
}

ALLTOALLS = {
    "linear-flat": alltoall_linear_flat,
    "pairwise-flat": alltoall_pairwise_flat,
    "two-level": alltoall_two_level,
}


def resolve(kind: str, name: str):
    """Look up strategy ``name`` in the ``kind`` registry, with a helpful
    error listing valid names on a miss."""
    tables = {"barrier": BARRIERS, "reduce": REDUCTIONS,
              "broadcast": BROADCASTS, "allgather": ALLGATHERS,
              "alltoall": ALLTOALLS}
    try:
        table = tables[kind]
    except KeyError:
        raise ValueError(f"unknown collective kind {kind!r}; have {sorted(tables)}") from None
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown {kind} strategy {name!r}; have {sorted(table)}"
        ) from None
