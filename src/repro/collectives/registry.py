"""Generalized strategy registry: ``kind`` × ``algorithm`` with
capability metadata.

The runtime config names a strategy per operation
(:class:`repro.runtime.config.RuntimeConfig`); the context resolves it
here.  Registering by name keeps benchmark definitions declarative — a
comparison line in the harness is just a config with different strings.

Every variant is registered through :func:`register`, which **requires**
the macro capability to be declared explicitly: ``macro_kind`` is the
window kind the strategy joins with in the macro-event coordinator
(:data:`repro.collectives.macro.REPLAYABLE`), or ``None`` for a strategy
that always runs fine-grained.  Making the declaration mandatory is the
registry-hygiene contract: a new algorithm family (like the
shared-memory-window one) cannot be added without stating whether the
extreme-scale sweep may bet a macro-collapsed run on it — variants
declared ``macro_kind=None`` fine-pin gracefully instead of tripping the
macro grant audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .barrier import (
    barrier_dissemination,
    barrier_dissemination_mcs,
    barrier_dissemination_twowait,
    barrier_linear,
    barrier_tdlb,
    barrier_tdlb_numa,
    barrier_tournament,
)
from .broadcast import bcast_binomial_flat, bcast_linear_flat, bcast_two_level
from .alltoall import (
    alltoall_linear_flat,
    alltoall_pairwise_flat,
    alltoall_two_level,
)
from .gather import (
    allgather_bruck_flat,
    allgather_linear_flat,
    allgather_two_level,
)
from .rabenseifner import allreduce_rabenseifner
from .reduce import (
    allreduce_binomial_flat,
    allreduce_three_level,
    allreduce_linear_flat,
    allreduce_recursive_doubling,
    allreduce_two_level,
)
from .shmwin import allreduce_shmwin, barrier_shmwin, bcast_shmwin
from .tuned import tuned_allreduce, tuned_barrier, tuned_bcast

__all__ = ["AlgorithmInfo", "register", "info", "BARRIERS", "REDUCTIONS",
           "BROADCASTS", "ALLGATHERS", "ALLTOALLS", "MACRO_CAPABLE",
           "macro_kind", "resolve"]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Capability metadata of one registered collective variant."""

    kind: str
    name: str
    fn: Callable
    #: macro window kind this strategy joins with, or None when it always
    #: runs fine-grained (never bets in the macro grant audit)
    macro_kind: Optional[str]


#: name → implementation, per kind — the tables the runtime resolves
#: against and the benchmarks/conformance matrix enumerate.
BARRIERS: Dict[str, Callable] = {}
REDUCTIONS: Dict[str, Callable] = {}
BROADCASTS: Dict[str, Callable] = {}
ALLGATHERS: Dict[str, Callable] = {}
ALLTOALLS: Dict[str, Callable] = {}

_TABLES: Dict[str, Dict[str, Callable]] = {
    "barrier": BARRIERS,
    "reduce": REDUCTIONS,
    "broadcast": BROADCASTS,
    "allgather": ALLGATHERS,
    "alltoall": ALLTOALLS,
}

#: (kind, name) → full capability record
_INFO: Dict[Tuple[str, str], AlgorithmInfo] = {}

#: strategies the macro-event coordinator can collapse, mapped to the
#: window kind they join with (:data:`repro.collectives.macro.REPLAYABLE`).
#: Benchmarks and the extreme-scale sweep consult this to assert that a
#: configured strategy actually macro-izes before betting a 100k-image
#: run on it.  Derived from the ``register`` declarations below.
MACRO_CAPABLE: Dict[Tuple[str, str], str] = {}


def register(kind: str, name: str, fn: Callable, *,
             macro_kind: Optional[str]) -> None:
    """Register collective variant ``name`` under ``kind``.

    ``macro_kind`` is keyword-only and has no default on purpose: every
    variant must state its macro capability explicitly (``None`` means
    "always fine-grained").  Re-registering an existing (kind, name)
    pair is an error — strategies are identities, not overridables.
    """
    try:
        table = _TABLES[kind]
    except KeyError:
        raise ValueError(
            f"unknown collective kind {kind!r}; have {sorted(_TABLES)}"
        ) from None
    if name in table:
        raise ValueError(f"{kind} strategy {name!r} is already registered")
    table[name] = fn
    _INFO[(kind, name)] = AlgorithmInfo(kind, name, fn, macro_kind)
    if macro_kind is not None:
        MACRO_CAPABLE[(kind, name)] = macro_kind


def info(kind: str, name: str) -> AlgorithmInfo:
    """Full capability record of a registered variant."""
    resolve(kind, name)  # uniform unknown-kind/name errors
    return _INFO[(kind, name)]


def macro_kind(kind: str, name: str) -> Optional[str]:
    """The macro window kind strategy ``name`` joins with, or None when
    the strategy always runs fine-grained."""
    return MACRO_CAPABLE.get((kind, name))


def resolve(kind: str, name: str) -> Callable:
    """Look up strategy ``name`` in the ``kind`` registry, with a helpful
    error listing valid names on a miss."""
    try:
        table = _TABLES[kind]
    except KeyError:
        raise ValueError(
            f"unknown collective kind {kind!r}; have {sorted(_TABLES)}"
        ) from None
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown {kind} strategy {name!r}; have {sorted(table)}"
        ) from None


# ----------------------------------------------------------------------
# The built-in families.  Registration order is load-bearing for the
# quick fault matrix (it probes the first name of each kind), so the
# long-standing defaults stay first and new families append at the end.
# ----------------------------------------------------------------------
register("barrier", "dissemination", barrier_dissemination, macro_kind=None)
register("barrier", "dissemination-mcs", barrier_dissemination_mcs,
         macro_kind=None)
register("barrier", "dissemination-twowait", barrier_dissemination_twowait,
         macro_kind=None)
register("barrier", "linear", barrier_linear, macro_kind="linear")
register("barrier", "tournament", barrier_tournament, macro_kind=None)
register("barrier", "tdlb", barrier_tdlb, macro_kind="tdlb")
register("barrier", "tdlb-numa", barrier_tdlb_numa, macro_kind=None)
register("barrier", "shmwin", barrier_shmwin, macro_kind=None)
register("barrier", "tuned", tuned_barrier, macro_kind=None)

register("reduce", "linear-flat", allreduce_linear_flat, macro_kind=None)
register("reduce", "binomial-flat", allreduce_binomial_flat, macro_kind=None)
register("reduce", "recursive-doubling", allreduce_recursive_doubling,
         macro_kind="reduce-rd")
register("reduce", "rabenseifner", allreduce_rabenseifner, macro_kind=None)
register("reduce", "two-level", allreduce_two_level, macro_kind="reduce-2l")
register("reduce", "three-level", allreduce_three_level, macro_kind=None)
register("reduce", "shmwin", allreduce_shmwin, macro_kind=None)
register("reduce", "tuned", tuned_allreduce, macro_kind=None)

register("broadcast", "linear-flat", bcast_linear_flat, macro_kind=None)
register("broadcast", "binomial-flat", bcast_binomial_flat, macro_kind=None)
register("broadcast", "two-level", bcast_two_level, macro_kind="bcast-2l")
register("broadcast", "shmwin", bcast_shmwin, macro_kind=None)
register("broadcast", "tuned", tuned_bcast, macro_kind=None)

register("allgather", "linear-flat", allgather_linear_flat, macro_kind=None)
register("allgather", "bruck-flat", allgather_bruck_flat, macro_kind=None)
register("allgather", "two-level", allgather_two_level, macro_kind=None)

register("alltoall", "linear-flat", alltoall_linear_flat, macro_kind=None)
register("alltoall", "pairwise-flat", alltoall_pairwise_flat, macro_kind=None)
register("alltoall", "two-level", alltoall_two_level, macro_kind=None)
