"""Tuned auto-selection dispatch over the algorithm registries.

Production MPI libraries ship "tuned" collective modules (Open MPI's
``coll/tuned``, MVAPICH's tables) whose decision functions were fit
offline by sweeping every algorithm over message sizes and communicator
shapes.  This module is the same idea for the simulated runtime: the
tournament harness (``python -m repro.bench tournament``) measures every
registered algorithm over the machine-shape × payload grid and persists
the per-regime winners as a **crossover table** (``TOURNAMENT.json``);
the ``"tuned"`` registry entries consult that table the first time a
collective of a given regime runs on a team, cache the selection on the
:class:`~repro.teams.team.TeamShared`, and delegate to the measured
winner.  When no table is installed — or no row matches the current
regime — dispatch falls back to the paper's two-level defaults
(:data:`DEFAULTS`), so ``"tuned"`` is always safe to name in a config.

Selection is a zero-cost bookkeeping step (no simulated time, no
messages): every image of the team derives the same regime key from
SPMD-uniform state (the team hierarchy and the payload size), so all
members delegate to the same underlying algorithm and the collective's
results stay bit-identical with running that algorithm directly.

Table resolution order: :func:`install_table` (explicit, wins) → the
``REPRO_TOURNAMENT`` environment variable → ``./TOURNAMENT.json`` in the
current directory.  The resolved table is cached process-wide; call
``install_table(None)`` to drop it and re-resolve.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from .base import NOTIFY_NBYTES, payload_nbytes

__all__ = [
    "PAYLOAD_BANDS",
    "DEFAULTS",
    "payload_band",
    "shape_key",
    "CrossoverTable",
    "install_table",
    "current_table",
    "tuned_barrier",
    "tuned_allreduce",
    "tuned_bcast",
]

#: payload bands, in the spirit of the eager/rendezvous switch points of
#: real tuned modules: ``small`` ends below the 256 B short-message
#: regime, ``medium`` below 16 KiB, everything above is ``large``.
PAYLOAD_BANDS: Tuple[Tuple[str, float], ...] = (
    ("small", 256.0),
    ("medium", 16 * 1024.0),
    ("large", float("inf")),
)

#: fallback per kind when no crossover row matches — the paper's
#: two-level configuration (:data:`repro.runtime.config.UHCAF_2LEVEL`).
DEFAULTS: Dict[str, str] = {
    "barrier": "tdlb",
    "reduce": "two-level",
    "broadcast": "two-level",
}


def payload_band(nbytes: int) -> str:
    """Band name for a payload of ``nbytes`` bytes."""
    for name, upper in PAYLOAD_BANDS:
        if nbytes < upper:
            return name
    return PAYLOAD_BANDS[-1][0]  # pragma: no cover - inf always matches


def shape_key(num_images: int, images_per_node: int) -> Tuple[int, int]:
    """The (nodes, max-images-per-node) regime key of a block-placed
    shape — matches what a formed team's hierarchy reports, so tournament
    rows and runtime lookups agree."""
    nodes = -(-num_images // images_per_node)
    return nodes, min(num_images, images_per_node)


class CrossoverTable:
    """Measured winners keyed by (kind, nodes, images-per-node, band)."""

    SCHEMA = "repro.bench/tournament/v1"

    def __init__(self, entries: Mapping[Tuple[str, int, int, str], str]):
        self._entries: Dict[Tuple[str, int, int, str], str] = dict(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def best(self, kind: str, nodes: int, ipn: int, band: str) -> Optional[str]:
        """The measured-fastest algorithm for this regime, or None when
        the table has no matching row (caller falls back to DEFAULTS)."""
        return self._entries.get((kind, nodes, ipn, band))

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping]) -> "CrossoverTable":
        """Build from winner rows (dicts with ``kind``/``nodes``/``ipn``/
        ``band``/``algorithm`` keys — the TOURNAMENT.json winner schema)."""
        entries = {}
        for row in rows:
            key = (str(row["kind"]), int(row["nodes"]), int(row["ipn"]),
                   str(row["band"]))
            entries[key] = str(row["algorithm"])
        return cls(entries)

    @classmethod
    def from_json(cls, path: Union[str, os.PathLike]) -> "CrossoverTable":
        """Load a TOURNAMENT.json artifact (validates its schema tag)."""
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        schema = doc.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError(
                f"{path}: expected schema {cls.SCHEMA!r}, got {schema!r}"
            )
        return cls.from_rows(doc.get("winners", []))


# ----------------------------------------------------------------------
# Process-wide table installation / resolution
# ----------------------------------------------------------------------
_installed: Optional[CrossoverTable] = None
_resolved: Optional[CrossoverTable] = None
_resolve_attempted = False


def install_table(table) -> None:
    """Install the crossover table dispatch should use.

    Accepts a :class:`CrossoverTable`, a list of winner rows, a path to a
    TOURNAMENT.json file, or None to drop the installation and fall back
    to env/cwd resolution on next use.
    """
    global _installed, _resolved, _resolve_attempted
    if table is None:
        _installed = None
    elif isinstance(table, CrossoverTable):
        _installed = table
    elif isinstance(table, (str, os.PathLike)):
        _installed = CrossoverTable.from_json(table)
    else:
        _installed = CrossoverTable.from_rows(table)
    _resolved = None
    _resolve_attempted = False


def current_table() -> Optional[CrossoverTable]:
    """The table dispatch currently consults (installed → REPRO_TOURNAMENT
    env → ./TOURNAMENT.json), or None when none resolves."""
    global _resolved, _resolve_attempted
    if _installed is not None:
        return _installed
    if not _resolve_attempted:
        _resolve_attempted = True
        _resolved = None
        for candidate in (os.environ.get("REPRO_TOURNAMENT"),
                          "TOURNAMENT.json"):
            if candidate and os.path.exists(candidate):
                try:
                    _resolved = CrossoverTable.from_json(candidate)
                except (OSError, ValueError, KeyError, json.JSONDecodeError):
                    _resolved = None
                else:
                    break
    return _resolved


# ----------------------------------------------------------------------
# Selection (cached per team, per regime)
# ----------------------------------------------------------------------
def _select(view, kind: str, nbytes: int) -> str:
    """The algorithm name ``kind`` dispatches to on this team for this
    payload size — resolved once per (kind, band) regime per team and
    cached on the shared team object."""
    band = payload_band(nbytes)
    cache = view.shared.tuned_selections
    cached = cache.get((kind, band))
    if cached is not None:
        return cached
    from .registry import resolve  # local import: registry imports us

    h = view.shared.hierarchy
    choice = None
    table = current_table()
    if table is not None:
        choice = table.best(kind, h.num_nodes_used, h.max_images_per_node,
                            band)
    if choice is None or choice == "tuned":
        choice = DEFAULTS[kind]
    else:
        try:  # a stale table naming a deregistered algorithm falls back
            resolve(kind, choice)
        except ValueError:
            choice = DEFAULTS[kind]
    cache[(kind, band)] = choice
    return choice


# ----------------------------------------------------------------------
# The registered "tuned" entry points
# ----------------------------------------------------------------------
def tuned_barrier(ctx, view):
    """Barrier that delegates to the measured-fastest algorithm for this
    team's shape (barriers carry only notify-sized payloads)."""
    from .registry import resolve

    fn = resolve("barrier", _select(view, "barrier", NOTIFY_NBYTES))
    yield from fn(ctx, view)


def tuned_allreduce(ctx, view, value, op="sum", result_image=None):
    """Reduction that delegates per (shape, payload band) regime."""
    from .registry import resolve

    fn = resolve("reduce", _select(view, "reduce", payload_nbytes(value)))
    result = yield from fn(ctx, view, value, op, result_image=result_image)
    return result


def tuned_bcast(ctx, view, value, source_image):
    """Broadcast that delegates per (shape, payload band) regime."""
    from .registry import resolve

    fn = resolve("broadcast", _select(view, "broadcast",
                                      payload_nbytes(value)))
    result = yield from fn(ctx, view, value, source_image)
    return result
