#!/usr/bin/env python
"""RandomAccess (GUPS) — the HPC Challenge atomics stress test.

The paper bases its HPL port on the CAF 2.0 HPC Challenge suite [9],
whose other famous member is RandomAccess: a global table of 64-bit
words receives XOR updates at pseudo-random locations — tiny messages,
zero locality, pure per-message overhead.  This port uses the runtime's
``atomic_op(..., "xor")`` (one-way remote atomics), measures GUPS
(giga-updates per second), and shows that hierarchy-awareness barely
helps here: updates are uniformly random, so only 1/nodes of them are
node-local — there is no structure for a two-level runtime to exploit.
A useful negative result: the paper's methodology targets *collectives*,
not irregular traffic.

    python examples/random_access.py
"""

import numpy as np

from repro import UHCAF_1LEVEL, UHCAF_2LEVEL, run_spmd

TABLE_BITS = 10          # global table = 2^10 words
UPDATES_PER_IMAGE = 128


def main(ctx):
    me = ctx.this_image()
    n_img = ctx.num_images()
    table_size = 1 << TABLE_BITS
    words_per_image = table_size // n_img
    table = yield from ctx.atomic_var("table")  # one counter word/image
    # (the contended word per image stands in for its table partition;
    # the traffic pattern — who talks to whom, how often — is identical)

    rng = np.random.default_rng(me)
    t0 = ctx.now
    for _ in range(UPDATES_PER_IMAGE):
        addr = int(rng.integers(table_size))
        owner = addr // words_per_image + 1
        yield from ctx.atomic_op(table, owner, "xor", addr | 1)
    yield from ctx.sync_all()
    elapsed = ctx.now - t0
    return elapsed


if __name__ == "__main__":
    total_updates = 16 * UPDATES_PER_IMAGE
    print(f"RandomAccess: {total_updates} XOR updates over 16 images "
          f"(8 per node)")
    times = {}
    for config in (UHCAF_2LEVEL, UHCAF_1LEVEL):
        result = run_spmd(main, num_images=16, images_per_node=8,
                          config=config)
        elapsed = max(result.results)
        gups = total_updates / elapsed / 1e9
        times[config.name] = elapsed
        print(f"  {config.name:15s} {elapsed * 1e3:8.3f} ms  "
              f"{gups:.6f} GUPS")
    ratio = times["uhcaf-1level"] / times["uhcaf-2level"]
    print(f"\naware/unaware gap: only {ratio:.1f}x — random updates have no")
    print("hierarchy to exploit (compare the barrier's ~26x): the paper's")
    print("methodology is about collectives, and this is its boundary.")
