#!/usr/bin/env python
"""Run the Teams Microbenchmark suite from the command line.

A compact CLI over :mod:`repro.bench.microbench` — the paper's §V-A
evaluation in one command.  Prints the paper-style comparison tables for
barrier, all-to-all reduction, and one-to-all broadcast.

    python examples/teams_microbenchmark.py                 # default sweep
    python examples/teams_microbenchmark.py --nodes 2 8 44  # custom sweep
    python examples/teams_microbenchmark.py --ipn 4         # images/node
"""

import argparse

from repro.bench import (
    barrier_benchmark,
    broadcast_benchmark,
    mpi_barrier_benchmark,
    reduce_benchmark,
    sweep,
)
from repro.runtime.config import (
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)


def barrier_table(configs, ipn):
    def caf(config):
        return lambda images, nodes: barrier_benchmark(
            images, images_per_node=ipn, config=config).seconds_per_op

    def mpi(tuning):
        return lambda images, nodes: mpi_barrier_benchmark(
            images, images_per_node=ipn, tuning=tuning).seconds_per_op

    return sweep(
        f"Barrier latency, {ipn} image(s) per node",
        configs=configs,
        systems=[
            ("TDLB (UHCAF 2level)", caf(UHCAF_2LEVEL)),
            ("UHCAF pure dissemination", caf(UHCAF_1LEVEL)),
            ("GASNet IB dissemination", caf(GASNET_IB_DISSEMINATION)),
            ("CAF 2.0", caf(CAF20_OPENUH)),
            ("MPI MVAPICH", mpi("mvapich")),
            ("MPI Open MPI", mpi("openmpi")),
            ("MPI Open MPI hierarch", mpi("openmpi-hierarch")),
        ],
    )


def reduce_table(configs, ipn, nelems):
    def caf(config):
        return lambda images, nodes: reduce_benchmark(
            images, images_per_node=ipn, config=config, nelems=nelems
        ).seconds_per_op

    return sweep(
        f"co_sum latency, {nelems} element(s), {ipn} image(s) per node",
        configs=configs,
        systems=[
            ("two-level reduction", caf(UHCAF_2LEVEL)),
            ("default UHCAF reduction", caf(UHCAF_1LEVEL)),
            ("CAF 2.0 (binomial)", caf(CAF20_OPENUH)),
        ],
    )


def broadcast_table(configs, ipn, nelems):
    def caf(config):
        return lambda images, nodes: broadcast_benchmark(
            images, images_per_node=ipn, config=config, nelems=nelems
        ).seconds_per_op

    return sweep(
        f"co_broadcast latency, {nelems} element(s), {ipn} image(s) per node",
        configs=configs,
        systems=[
            ("two-level broadcast", caf(UHCAF_2LEVEL)),
            ("flat binomial broadcast", caf(UHCAF_1LEVEL)),
            ("CAF 2.0 (binomial)", caf(CAF20_OPENUH)),
        ],
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[2, 8, 44])
    parser.add_argument("--ipn", type=int, default=8,
                        help="images per node (default 8, the paper's)")
    parser.add_argument("--nelems", type=int, default=1,
                        help="reduction/broadcast payload elements")
    args = parser.parse_args()

    configs = [(n * args.ipn, n) for n in args.nodes]
    for table in (
        barrier_table(configs, args.ipn),
        reduce_table(configs, args.ipn, args.nelems),
        broadcast_table(configs, args.ipn, args.nelems),
    ):
        print(table.render())
        print()
