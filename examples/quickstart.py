#!/usr/bin/env python
"""Quickstart: a tour of the simulated Coarray Fortran runtime.

Runs a 16-image SPMD program (8 images per node, 2 nodes) that touches
each major feature: coarrays with one-sided puts/gets, synchronization,
teams, and the memory-hierarchy-aware collectives — then runs the same
program on the hierarchy-unaware 1-level stack to show the cost gap.

    python examples/quickstart.py
"""

import numpy as np

from repro import UHCAF_1LEVEL, UHCAF_2LEVEL, run_spmd


def main(ctx):
    me = ctx.this_image()          # 1-based, like Fortran
    n = ctx.num_images()

    # -- coarrays: one NumPy allocation per image, cosubscripted access --
    ring = yield from ctx.allocate("ring", (4,), dtype=np.float64)
    ctx.local(ring)[:] = me
    yield from ctx.sync_all()

    # one-sided put: write my value into my right neighbour's slot 0
    right = me % n + 1
    yield from ctx.put(ring, right, float(me), index=0)
    yield from ctx.sync_all()
    left_value = ctx.local(ring)[0]          # who wrote into me?

    # one-sided get: read the left neighbour's whole array
    left = (me - 2) % n + 1
    left_array = yield from ctx.get(ring, left)

    # -- collectives (strategy chosen by the runtime config) -------------
    total = yield from ctx.co_sum(float(me))
    biggest = yield from ctx.co_max(me)
    announcement = yield from ctx.co_broadcast(
        np.array([3.14, 2.71]) if me == 1 else None, source_image=1
    )

    # -- teams: split into two halves, work inside, come back ------------
    color = 1 if me <= n // 2 else 2
    half = yield from ctx.form_team(color)
    yield from ctx.change_team(half)
    team_rank = ctx.this_image()             # renumbered inside the team
    team_total = yield from ctx.co_sum(team_rank)
    yield from ctx.end_team()

    return {
        "image": me,
        "left_wrote": left_value,
        "left_array0": float(left_array[0]),
        "co_sum": float(total),
        "co_max": int(biggest),
        "broadcast": announcement.tolist(),
        "team": color,
        "team_total": int(team_total),
    }


if __name__ == "__main__":
    for config in (UHCAF_2LEVEL, UHCAF_1LEVEL):
        result = run_spmd(main, num_images=16, images_per_node=8, config=config)
        print(f"== {config.name} ==")
        print(f"simulated time: {result.time * 1e6:.2f} us")
        print(f"traffic: {result.traffic.inter_messages} inter-node + "
              f"{result.traffic.intra_messages} intra-node messages")
        for row in result.results[:3]:
            print(f"  image {row['image']}: left wrote {row['left_wrote']:.0f}, "
                  f"co_sum={row['co_sum']:.0f}, team {row['team']} "
                  f"total={row['team_total']}")
        print()
    print("Note the simulated-time gap between the 2-level (hierarchy-aware)")
    print("and 1-level stacks: identical results, different runtimes.")
