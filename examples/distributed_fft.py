#!/usr/bin/env python
"""Distributed 1-D FFT via the transpose algorithm (HPCC's FFT kernel).

Drives :func:`repro.apps.distributed_fft`: transpose → row FFT(N1) →
twiddle → transpose → row FFT(N2).  Two all-to-alls bracket purely
local math — which is why the HPCC FFT is the canonical alltoall
workload.  The result is verified element-by-element against
``numpy.fft.fft`` and both alltoall strategies are timed.

    python examples/distributed_fft.py
"""

import numpy as np

from repro import UHCAF_2LEVEL, run_spmd
from repro.apps import distributed_fft, reassemble_fft

N1, N2 = 32, 32           # N = N1 * N2 signal


def main(ctx, signal):
    me = ctx.this_image()
    rows = N1 // ctx.num_images()
    mine = signal.reshape(N1, N2)[(me - 1) * rows: me * rows]
    out = yield from distributed_fft(ctx, mine, N1, N2)
    return out


if __name__ == "__main__":
    rng = np.random.default_rng(11)
    signal = rng.random(N1 * N2) + 1j * rng.random(N1 * N2)

    result = run_spmd(main, num_images=16, images_per_node=8,
                      config=UHCAF_2LEVEL, args=(signal,))
    got = reassemble_fft(np.vstack(result.results))
    reference = np.fft.fft(signal)
    err = np.linalg.norm(got - reference) / np.linalg.norm(reference)
    print(f"distributed FFT of {N1 * N2} points over 16 images")
    print(f"relative error vs numpy.fft.fft: {err:.2e}")
    assert err < 1e-12

    for strategy in ("two-level", "pairwise-flat"):
        config = UHCAF_2LEVEL.with_(alltoall=strategy)
        r = run_spmd(main, num_images=16, images_per_node=8,
                     config=config, args=(signal,))
        print(f"  alltoall {strategy:14s} {r.time * 1e6:9.1f} simulated us")
