#!/usr/bin/env python
"""Distributed matrix transpose — the all-to-all workload (FFT's core).

Drives :func:`repro.apps.distributed_transpose` over a size sweep to
expose the **aggregation crossover**:

* small blocks → per-message software overhead dominates, and the
  two-level exchange (one aggregated wire message per node pair instead
  of one per image pair) wins outright;
* large blocks → bandwidth dominates, and aggregation loses: two-level
  moves every byte three times (slave→leader, wire, leader→slave) while
  the flat exchange moves it once.

Exactly the kind of crossover a memory-hierarchy-aware runtime would
use to pick its algorithm per call — the natural next step after the
paper's static two-level strategy.

    python examples/distributed_transpose.py
"""

import numpy as np

from repro import UHCAF_2LEVEL, run_spmd
from repro.apps import distributed_transpose


def main(ctx, n):
    me = ctx.this_image()
    rows = n // ctx.num_images()
    lo = (me - 1) * rows
    mine = np.add.outer(np.arange(lo, lo + rows) * n, np.arange(n)).astype(float)
    t0 = ctx.now
    transposed = yield from distributed_transpose(ctx, mine, n)
    elapsed = ctx.now - t0
    expected = np.add.outer(np.arange(lo, lo + rows),
                            np.arange(n) * n).astype(float)
    assert (transposed == expected).all(), f"image {me}: transpose wrong"
    return elapsed


if __name__ == "__main__":
    print("transpose over 16 images (8 per node); slab = per-pair payload")
    print(f"{'N':>6} {'slab':>8} {'two-level':>12} {'pairwise-flat':>14} "
          f"{'winner':>10}")
    for n in (32, 64, 128, 512):
        times = {}
        for strategy in ("two-level", "pairwise-flat"):
            config = UHCAF_2LEVEL.with_(alltoall=strategy)
            result = run_spmd(main, num_images=16, images_per_node=8,
                              config=config, args=(n,))
            times[strategy] = max(result.results)
        slab = (n // 16) ** 2 * 8
        winner = min(times, key=times.get)
        print(f"{n:6d} {slab:7d}B {times['two-level'] * 1e6:10.1f}us "
              f"{times['pairwise-flat'] * 1e6:12.1f}us {winner:>14}")
    print()
    print("Small slabs: aggregation wins (fewer overhead-priced messages).")
    print("Large slabs: the flat exchange wins (every byte moves once).")
