#!/usr/bin/env python
"""HPL on teams: verified small run + a Figure-1-style comparison point.

First runs the CAF HPL port in *verification* mode (real NumPy
arithmetic on a 256×256 system, residual-checked), then times a larger
model-mode factorization on 64 images / 8 nodes under three runtime
stacks to show the Figure-1 effect: the same HPL source, different
GFLOP/s depending on whether the runtime's collectives understand the
memory hierarchy.

    python examples/hpl_demo.py
"""

from repro.hpl import run_hpl
from repro.runtime.config import CAF20_GFORTRAN, UHCAF_1LEVEL, UHCAF_2LEVEL

if __name__ == "__main__":
    print("== verification run: N=256, NB=32, 16 images on 2 nodes ==")
    report = run_hpl(n=256, nb=32, num_images=16, images_per_node=8,
                     config=UHCAF_2LEVEL, verify=True)
    print(f"  grid {report.p}x{report.q}, simulated {report.seconds * 1e3:.2f} ms, "
          f"{report.gflops:.2f} GFLOP/s")
    print(f"  ||A - L.U|| / ||A|| = {report.residual:.2e}")
    assert report.residual < 1e-12, "factorization must be numerically correct"

    print()
    print("== model-mode comparison: N=2048, NB=128, 64 images on 8 nodes ==")
    for config in (UHCAF_2LEVEL, UHCAF_1LEVEL, CAF20_GFORTRAN):
        report = run_hpl(n=2048, nb=128, num_images=64, images_per_node=8,
                         config=config)
        print(f"  {config.name:18s} {report.gflops:7.2f} GFLOP/s "
              f"({report.seconds:.3f} simulated seconds)")
    print()
    print("Same algorithm, same machine — the spread is the runtime stack:")
    print("hierarchy-aware collectives (2level) vs flat ones (1level) vs a")
    print("weaker compiler backend (CAF 2.0 + GFortran).")
