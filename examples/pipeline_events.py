#!/usr/bin/env python
"""A software pipeline built on event variables (F2015) — no barriers.

Images form a processing chain: image 1 generates batches, each
intermediate image transforms batches as they arrive, the last image
checks the result.  Flow control is pure point-to-point:

* ``ready`` event — "your inbox holds a fresh batch" (posted after the
  one-sided put is *delivered*, so data can never trail its own
  notification);
* ``taken`` event — "I copied my inbox, you may overwrite it" (the
  back-pressure that keeps a fast producer from clobbering a slow
  consumer).

    python examples/pipeline_events.py
"""

import numpy as np

from repro import UHCAF_2LEVEL, run_spmd

BATCHES = 12
BATCH = 256


def main(ctx):
    me = ctx.this_image()
    n = ctx.num_images()
    inbox = yield from ctx.allocate("inbox", (BATCH,))
    ready = yield from ctx.event_var("ready")
    taken = yield from ctx.event_var("taken")

    downstream_owes_ack = False
    data = None
    for batch in range(BATCHES):
        # ---- receive (or generate) -------------------------------------
        if me == 1:
            data = np.full(BATCH, float(batch))
        else:
            yield from ctx.event_wait(ready)
            data = ctx.local(inbox).copy()
            yield from ctx.event_post(taken, me - 1)

        # ---- my stage's work --------------------------------------------
        data = data + me
        yield ctx.compute_cost(3 * BATCH)

        # ---- forward ----------------------------------------------------
        if me < n:
            if downstream_owes_ack:
                yield from ctx.event_wait(taken)
            handle = yield from ctx.put_nb(inbox, me + 1, data)
            yield from ctx.wait_rma(handle)        # delivered before...
            yield from ctx.event_post(ready, me + 1)  # ...we announce it
            downstream_owes_ack = True

    # drain the final ack so every post is consumed
    if me < n:
        yield from ctx.event_wait(taken)
    # after stages 1..n, batch b carries b + (1 + 2 + ... + n)
    if me == n:
        expected = (BATCHES - 1) + n * (n + 1) // 2
        assert float(data[0]) == expected, (float(data[0]), expected)
        return float(data[0])
    return None


if __name__ == "__main__":
    result = run_spmd(main, num_images=8, images_per_node=4,
                      config=UHCAF_2LEVEL)
    print(f"pipeline of 8 stages, {BATCHES} batches of {BATCH} elements")
    print(f"simulated time: {result.time * 1e6:.1f} us "
          f"(batches stream through stages concurrently)")
    print(f"sink verified final value: {result.results[-1]}")
