#!/usr/bin/env python
"""2-D heat diffusion with row teams — the classic halo-exchange workload.

Drives :func:`repro.apps.jacobi_solve` with the domain split into two
independent regions, each handled by its own team running its own solve
with its own synchronization — no cross-team coordination at all, the
paper's "loosely-coupled subproblems" (§I/§II).  Within a region,
images exchange halo rows with one-sided puts + pairwise ``sync
images`` (no barriers), and check convergence with a team ``co_max``.

    python examples/heat_diffusion.py
"""

from repro import UHCAF_2LEVEL, run_spmd
from repro.apps import jacobi_solve

NX = 64
ROWS_PER_IMAGE = 8
STEPS = 60


def main(ctx):
    me = ctx.this_image()
    n = ctx.num_images()
    region = 1 if me <= n // 2 else 2
    team = yield from ctx.form_team(region)
    yield from ctx.change_team(team)
    _, residual = yield from jacobi_solve(
        ctx, rows_per_image=ROWS_PER_IMAGE, cols=NX, steps=STEPS,
        check_every=20,
    )
    yield from ctx.end_team()
    return (region, residual)


if __name__ == "__main__":
    result = run_spmd(main, num_images=16, images_per_node=8,
                      config=UHCAF_2LEVEL)
    print(f"simulated time: {result.time * 1e3:.3f} ms for {STEPS} steps "
          f"on 2 teams of 8 images")
    for region in (1, 2):
        residuals = {r for reg, r in result.results if reg == region}
        assert len(residuals) == 1, "all images of a team agree on the residual"
        print(f"  region {region}: final residual {residuals.pop():.4f}")
    print(f"traffic: {result.traffic.inter_messages} inter-node, "
          f"{result.traffic.intra_messages} intra-node messages")
