#!/usr/bin/env python
"""Distributed conjugate gradient — the latency-bound collective workload.

Drives :func:`repro.apps.cg_solve`: a 1-D Poisson system, rows
block-distributed, one halo exchange and three global dot products per
iteration.  The dot products (``co_sum``) are tiny and latency-bound —
the workload class the paper's two-level reduction targets — so the
same solver runs ~30× faster on the hierarchy-aware stack.

    python examples/conjugate_gradient.py
"""

import numpy as np

from repro import UHCAF_1LEVEL, UHCAF_2LEVEL, run_spmd
from repro.apps import cg_solve
from repro.apps.cg import poisson_matrix

N = 128            # global unknowns (CG converges within N iterations)


def main(ctx, b_global):
    t0 = ctx.now
    x, iters, res = yield from cg_solve(ctx, b_global)
    return x, iters, res, ctx.now - t0


if __name__ == "__main__":
    rng = np.random.default_rng(3)
    b_global = rng.random(N)

    # --- correctness on the 2-level stack ------------------------------
    result = run_spmd(main, num_images=16, images_per_node=8,
                      config=UHCAF_2LEVEL, args=(b_global,))
    x = np.concatenate([r[0] for r in result.results])
    x_ref = np.linalg.solve(poisson_matrix(N), b_global)
    err = np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref)
    iters, res = result.results[0][1], result.results[0][2]
    print(f"CG converged in {iters} iterations, residual {res:.2e}")
    print(f"relative error vs dense solve: {err:.2e}")
    assert err < 1e-6

    # --- the paper's effect on a real solver ----------------------------
    print()
    for config in (UHCAF_2LEVEL, UHCAF_1LEVEL):
        r = run_spmd(main, num_images=16, images_per_node=8,
                     config=config, args=(b_global,))
        elapsed = max(row[3] for row in r.results)
        print(f"{config.name:15s} {elapsed * 1e3:8.2f} ms simulated "
              f"({iters} iterations, 3 allreduces each)")
    print()
    print("CG is latency-bound on its dot products — the two-level")
    print("reduction is why the aware stack wins.")
