#!/usr/bin/env python
"""Monte Carlo π with dynamic load balancing via atomics.

Work units (blocks of random samples) are handed out by a shared atomic
counter on image 1 — every image does ``atomic_fetch_add`` to claim the
next block, so faster images naturally take more work (here some images
are artificially "slow", as if sharing their node with noisy
neighbours).  Partial sums are combined at the end with the two-level
``co_sum``.  A lock-protected results table shows the ``lock``/
``unlock`` API on the side.

    python examples/monte_carlo_pi.py
"""

import numpy as np

from repro import UHCAF_2LEVEL, run_spmd

TOTAL_BLOCKS = 64
SAMPLES_PER_BLOCK = 20_000


def main(ctx):
    me = ctx.this_image()
    next_block = yield from ctx.atomic_var("next_block")
    table = yield from ctx.allocate("table", (ctx.num_images(),))
    table_lock = yield from ctx.lock_var("table_lock")

    # images 3 and 7 are 4x slower per block (noisy-neighbour model)
    slowdown = 4.0 if me in (3, 7) else 1.0

    rng = np.random.default_rng(me)
    hits = 0
    samples = 0
    blocks_done = 0
    while True:
        block = yield from ctx.atomic_fetch_add(next_block, 1, 1)
        if block >= TOTAL_BLOCKS:
            break
        xy = rng.random((SAMPLES_PER_BLOCK, 2))
        hits += int(((xy ** 2).sum(axis=1) <= 1.0).sum())
        samples += SAMPLES_PER_BLOCK
        blocks_done += 1
        yield ctx.compute_cost(6 * SAMPLES_PER_BLOCK * slowdown)

    # lock-protected publication of per-image block counts on image 1
    yield from ctx.lock(table_lock, 1)
    yield from ctx.put(table, 1, float(blocks_done), index=me - 1)
    yield from ctx.unlock(table_lock, 1)

    total_hits = yield from ctx.co_sum(hits)
    total_samples = yield from ctx.co_sum(samples)
    yield from ctx.sync_all()
    pi = 4.0 * total_hits / total_samples
    counts = ctx.local(table).copy() if me == 1 else None
    return (pi, blocks_done, counts)


if __name__ == "__main__":
    result = run_spmd(main, num_images=8, images_per_node=8,
                      config=UHCAF_2LEVEL)
    pi, _, counts = result.results[0]
    print(f"pi ≈ {pi:.5f}  (error {abs(pi - np.pi):.5f}, "
          f"{TOTAL_BLOCKS * SAMPLES_PER_BLOCK:,} samples)")
    print(f"simulated time: {result.time * 1e3:.2f} ms")
    print("blocks claimed per image:", [int(c) for c in counts])
    slow = counts[2] + counts[6]
    fast = sum(counts) - slow
    print(f"slow images (3, 7) claimed {int(slow)} blocks; "
          f"fast ones {int(fast)} — the atomic counter balanced the load.")
    assert sum(counts) == TOTAL_BLOCKS
    assert abs(pi - np.pi) < 0.01
