"""E8 — multi-level hierarchies (the paper's §VII future work, built).

The paper's motivation is "many-core computing nodes"; its future work
proposes extending the two tiers to NUMA domains.  This bench runs the
3-level core/socket/node barrier (``tdlb-numa``) against 2-level TDLB
and flat dissemination on a *fat* node (32 cores, 4 sockets — the
many-core direction), sweeping the cross-socket memory-system penalty:

* On the paper's dual-socket Opteron (factor ≈ 3, 150 ns) the extra
  tier is nearly a wash — consistent with the paper deferring it.
* As the cross-socket penalty grows (large multi-socket machines), the
  socket tier's gain over plain TDLB grows monotonically, past 1.4× —
  the quantitative case for the proposed extension.
"""

from dataclasses import replace

from repro.bench import barrier_benchmark
from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

TDLB3 = UHCAF_2LEVEL.with_(name="uhcaf-3level", barrier="tdlb-numa")


def fat_numa_spec(nodes, cross_factor, cores=32, sockets=4,
                  cross_latency=300e-9):
    spec = paper_cluster(nodes)
    node = replace(
        spec.node, cores=cores, sockets=sockets, smp_latency=cross_latency,
        cross_socket_bus_factor=cross_factor,
    )
    return replace(spec, node=node)


def test_numa_tier(once):
    def run():
        rows = []
        for factor in (1.0, 3.0, 6.0, 12.0):
            spec = fat_numa_spec(8, factor)
            flat = barrier_benchmark(256, 32, UHCAF_1LEVEL, spec=spec).seconds_per_op
            two = barrier_benchmark(256, 32, UHCAF_2LEVEL, spec=spec).seconds_per_op
            three = barrier_benchmark(256, 32, TDLB3, spec=spec).seconds_per_op
            rows.append((factor, flat, two, three))
        return rows

    rows = once(run)
    print()
    print("E8: 3-level (socket-aware) barrier, 256 images on 8 fat nodes "
          "(32 cores / 4 sockets each)")
    print(f"{'x-socket cost':>14} {'flat us':>10} {'2-level us':>11} "
          f"{'3-level us':>11} {'3level gain':>12}")
    gains = []
    for factor, flat, two, three in rows:
        gain = two / three
        gains.append(gain)
        print(f"{factor:13.0f}x {flat * 1e6:10.2f} {two * 1e6:11.2f} "
              f"{three * 1e6:11.2f} {gain:11.2f}x")
        # both hierarchical variants crush flat dissemination on many-core
        assert two < flat / 10 and three < flat / 10

    # benefit grows monotonically with the socket penalty...
    assert gains == sorted(gains)
    # ...modest at the paper's dual-socket class, real on fat NUMA
    assert gains[0] < 1.2
    assert gains[-1] > 1.4
    print()


def test_three_level_degenerates_gracefully(once):
    """On the paper's own node (dual quad-core) the 3-level barrier must
    not lose to TDLB — the extension is free when unneeded."""

    def run():
        two = barrier_benchmark(64, 8, UHCAF_2LEVEL).seconds_per_op
        three = barrier_benchmark(64, 8, TDLB3).seconds_per_op
        flat1 = barrier_benchmark(8, 1, UHCAF_2LEVEL).seconds_per_op
        flat3 = barrier_benchmark(8, 1, TDLB3).seconds_per_op
        return two, three, flat1, flat3

    two, three, flat1, flat3 = once(run)
    print()
    print(f"E8b: paper node — 2-level {two * 1e6:.2f} us, "
          f"3-level {three * 1e6:.2f} us; flat team: {flat1 * 1e6:.2f} vs "
          f"{flat3 * 1e6:.2f} us")
    assert three <= two * 1.05
    # flat hierarchy: both degenerate to pure leader dissemination
    assert flat3 == flat1


def test_numa_tier_reduction(once):
    """The socket tier applied to reduction (future work, extended):
    three-level vs two-level co_sum on fat NUMA nodes."""
    from repro.bench import reduce_benchmark

    R3 = UHCAF_2LEVEL.with_(name="uhcaf-3level-reduce", reduce="three-level")

    def run():
        rows = []
        for factor in (1.0, 6.0, 12.0):
            spec = fat_numa_spec(8, factor)
            two = reduce_benchmark(256, 32, UHCAF_2LEVEL, spec=spec).seconds_per_op
            three = reduce_benchmark(256, 32, R3, spec=spec).seconds_per_op
            rows.append((factor, two, three))
        return rows

    rows = once(run)
    print()
    print("E8c: 3-level reduction, 256 images on 8 fat nodes")
    gains = []
    for factor, two, three in rows:
        gains.append(two / three)
        print(f"  x-socket {factor:4.0f}x: 2-level {two * 1e6:8.2f} us, "
              f"3-level {three * 1e6:8.2f} us ({two / three:.2f}x)")
    # same shape as the barrier: monotone benefit, real on fat NUMA
    assert gains == sorted(gains)
    assert gains[-1] > 1.3
    print()
