"""E11 — §II's motivating claim: team collectives overlap.

"Using teams, many collective operations can be overlapped; these
collectives will work on just a subset of images; no global
synchronizations among all the images are thus needed."

Quantified: 128 images on 16 nodes run R rounds of (reduction +
barrier).  Variant A does the work inside 4 node-aligned teams — the 4
teams' collectives proceed concurrently on disjoint nodes.  Variant B
does the same number of reduction/barrier operations globally (the
no-teams program structure).  Variant C is the adversarial team layout
(strided teams sharing every node), showing that overlap needs the
*logical* decomposition to respect the physical one — the paper's two
hierarchy dimensions (§I) in one experiment.
"""

from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_2LEVEL
from repro.runtime.program import run_spmd

IMAGES = 128
IPN = 8
NODES = IMAGES // IPN
ROUNDS = 10
NUM_TEAMS = 4


def teamed(strided: bool):
    per_team = IMAGES // NUM_TEAMS

    def main(ctx):
        me = ctx.this_image()
        if strided:
            color = (me - 1) % NUM_TEAMS + 1
        else:
            color = (me - 1) // per_team + 1
        team = yield from ctx.form_team(color)
        yield from ctx.change_team(team)
        t0 = ctx.now
        for _ in range(ROUNDS):
            yield from ctx.co_sum(1)
            yield from ctx.sync_all()
        elapsed = ctx.now - t0
        yield from ctx.end_team()
        return elapsed

    return main


def global_program(ctx):
    t0 = ctx.now
    for _ in range(ROUNDS):
        yield from ctx.co_sum(1)
        yield from ctx.sync_all()
    return ctx.now - t0


def run(main):
    result = run_spmd(main, num_images=IMAGES, images_per_node=IPN,
                      spec=paper_cluster(NODES), config=UHCAF_2LEVEL)
    return max(result.results)


def test_team_overlap(once):
    def runs():
        return run(teamed(strided=False)), run(global_program), run(teamed(strided=True))

    block_teams, global_, strided_teams = once(runs)
    print()
    print(f"E11: {ROUNDS} rounds of co_sum+barrier, 128 images on 16 nodes")
    print(f"  4 node-aligned teams (overlapped) : {block_teams * 1e6:9.2f} us")
    print(f"  global collectives (no teams)     : {global_ * 1e6:9.2f} us")
    print(f"  4 strided teams (nodes shared)    : {strided_teams * 1e6:9.2f} us")
    print(f"  team speedup: {global_ / block_teams:.2f}x aligned, "
          f"{global_ / strided_teams:.2f}x strided")
    # node-aligned teams overlap: meaningfully faster than global ops
    assert block_teams < 0.75 * global_
    # strided teams contend on every node's conduit engine and NIC —
    # decomposition must respect the hierarchy to pay off
    assert block_teams < strided_teams
    print()
