"""E7 — ablations of the §IV design choices inside TDLB.

Three axes the paper's methodology fixes by analysis; this bench
verifies the analysis empirically on the model:

1. **Intranode strategy** — the paper pairs a *linear* intranode phase
   with inter-node dissemination.  Compare against running
   dissemination intranode too (via an aware conduit, so both use
   direct stores): the linear phase wins inside a node because the
   memory system serializes everything anyway, so fewer notifications
   (2(n−1) < n·log n) win outright.
2. **Leader election** — lowest-index vs highest-index vs rotating
   leaders: immaterial for latency on a symmetric node (asserted equal
   to within 1%), which is why the paper can just designate one.
3. **Transport-awareness vs algorithm restructuring** — an aware
   conduit under the *flat* dissemination algorithm recovers only part
   of TDLB's win: the paper's point that hierarchy must reach the
   algorithm, not just the transport.
"""

from conftest import emit

from repro.bench import barrier_benchmark, sweep
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

IPN = 8
SWEEP = [(n * IPN, n) for n in (2, 8, 32)]

#: flat dissemination but with hierarchy-aware transport (direct stores
#: for same-node notifications) — ablation axis 3
AWARE_FLAT = UHCAF_2LEVEL.with_(name="aware-flat", barrier="dissemination")


def _latency(config):
    def fn(images, nodes):
        return barrier_benchmark(
            images, images_per_node=IPN, config=config
        ).seconds_per_op

    return fn


def test_algorithm_vs_transport_awareness(once):
    def run():
        return sweep(
            "E7a: what the hierarchy must reach (barrier latency)",
            configs=SWEEP,
            systems=[
                ("TDLB (aware algorithm + transport)", _latency(UHCAF_2LEVEL)),
                ("flat dissemination + aware transport", _latency(AWARE_FLAT)),
                ("flat dissemination, unaware", _latency(UHCAF_1LEVEL)),
            ],
        )

    table = once(run)
    emit(table)
    tdlb = table.get("TDLB (aware algorithm + transport)")
    aware_flat = table.get("flat dissemination + aware transport")
    unaware = table.get("flat dissemination, unaware")
    for label in table.labels:
        # transport awareness alone already helps a lot...
        assert aware_flat.values[label] < unaware.values[label]
        # ...but restructuring the algorithm (TDLB) is needed for the rest
        assert tdlb.values[label] < aware_flat.values[label]


def test_leader_election_is_immaterial(once):
    def run():
        out = {}
        for strategy in ("lowest", "highest", "rotating"):
            cfg = UHCAF_2LEVEL.with_(leader_strategy=strategy)
            out[strategy] = barrier_benchmark(
                128, images_per_node=IPN, config=cfg
            ).seconds_per_op
        return out

    results = once(run)
    print()
    print("E7b: leader election strategy, 128 images on 16 nodes")
    for strategy, seconds in results.items():
        print(f"  {strategy:10s} {seconds * 1e6:8.2f} us")
    values = list(results.values())
    assert max(values) <= min(values) * 1.01, (
        "leader choice should not matter on a symmetric node"
    )


def test_linear_intranode_phase_beats_dissemination_intranode(once):
    """One full node: compare the two intranode algorithms directly
    (both over direct stores).

    §IV-A argues linear wins "in the worst case, [when] all those
    notifications would have to be serialized" — i.e. one memory
    controller retiring everything.  We test exactly that (a
    single-socket node), and also report the dual-controller node, where
    parallel retirement narrows the gap to a near-tie: the serialization
    assumption is load-bearing, which is worth knowing.
    """
    from dataclasses import replace

    from repro.machine import paper_cluster

    linear_cfg = UHCAF_2LEVEL.with_(barrier="linear", hierarchy_aware=True)

    def run():
        serial_spec = paper_cluster(1)
        serial_spec = replace(
            serial_spec, node=replace(serial_spec.node, sockets=1)
        )
        linear_1s = barrier_benchmark(
            8, images_per_node=8, config=linear_cfg, spec=serial_spec
        ).seconds_per_op
        diss_1s = barrier_benchmark(
            8, images_per_node=8, config=AWARE_FLAT, spec=serial_spec
        ).seconds_per_op
        linear_2s = barrier_benchmark(8, 8, linear_cfg).seconds_per_op
        diss_2s = barrier_benchmark(8, 8, AWARE_FLAT).seconds_per_op
        return linear_1s, diss_1s, linear_2s, diss_2s

    linear_1s, diss_1s, linear_2s, diss_2s = once(run)
    print()
    print("E7c: single-node barrier, linear vs dissemination intranode phase")
    print(f"  fully-serializing node : linear {linear_1s * 1e6:.2f} us vs "
          f"dissemination {diss_1s * 1e6:.2f} us")
    print(f"  dual-controller node   : linear {linear_2s * 1e6:.2f} us vs "
          f"dissemination {diss_2s * 1e6:.2f} us")
    # the paper's worst-case analysis: 2(n−1) < n·log n when serialized
    assert linear_1s < diss_1s
    # with parallel controllers the two are within ~15% either way
    assert abs(linear_2s - diss_2s) < 0.15 * max(linear_2s, diss_2s)
