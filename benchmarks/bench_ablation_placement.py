"""E10 — robustness to image placement (beyond the paper's block runs).

The paper's configurations place images block-wise (consecutive images
share a node).  Schedulers don't always do that: under *cyclic*
placement image i sits on node i mod N, so a power-of-two dissemination
distance d is node-local only when d ≡ 0 (mod N).  Flat dissemination's
cost therefore swings with placement — and in *both* directions on an
unaware GASNet runtime, because its loopback path is costlier than a
genuine remote put: at 4–16 nodes cyclic placement is ~20% slower
(extra remote rounds contending on NICs), while at 44 nodes it is ~35%
*faster* (no distance hits the node modulus, so the expensive loopback
path is never taken — co-location actively hurts the unaware runtime,
the paper's motivation taken to its extreme).

TDLB computes the intranode sets from the *actual* placement at team
formation (§IV-A), so its latency is exactly placement-invariant here —
the methodology's robustness claim, quantified.
"""

from repro.machine import block_placement, cyclic_placement, paper_cluster
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.runtime.program import run_spmd

IPN = 8


def barrier_latency(config, placements, nodes, iters=8):
    def main(ctx):
        yield from ctx.sync_all()
        yield from ctx.sync_all()
        t0 = ctx.now
        for _ in range(iters):
            yield from ctx.sync_all()
        return (ctx.now - t0) / iters

    result = run_spmd(main, num_images=len(placements),
                      spec=paper_cluster(nodes), placements=placements,
                      config=config)
    return max(result.results)


def test_placement_robustness(once):
    def run():
        rows = []
        for nodes in (4, 16, 44):
            images = nodes * IPN
            block = block_placement(images, IPN)
            cyclic = cyclic_placement(images, nodes)
            rows.append((
                nodes,
                barrier_latency(UHCAF_2LEVEL, block, nodes),
                barrier_latency(UHCAF_2LEVEL, cyclic, nodes),
                barrier_latency(UHCAF_1LEVEL, block, nodes),
                barrier_latency(UHCAF_1LEVEL, cyclic, nodes),
            ))
        return rows

    rows = once(run)
    print()
    print("E10: barrier latency vs image placement (8 images/node)")
    print(f"{'nodes':>6} {'tdlb blk us':>12} {'tdlb cyc us':>12} "
          f"{'diss blk us':>12} {'diss cyc us':>12} {'diss swing':>11}")
    for nodes, t2b, t2c, t1b, t1c in rows:
        swing = t1c / t1b
        print(f"{nodes:6d} {t2b * 1e6:12.2f} {t2c * 1e6:12.2f} "
              f"{t1b * 1e6:12.2f} {t1c * 1e6:12.2f} {swing:10.2f}x")
        # TDLB is exactly placement-invariant: the leader tier sees the
        # same node set either way, and intranode set sizes are equal.
        assert t2c == t2b
        # flat dissemination's latency swings materially with placement
        # (direction is modulus-dependent — see module docstring)
        assert abs(swing - 1.0) > 0.1
        # and TDLB wins by a wide margin under BOTH placements
        assert t1b > 4 * t2b and t1c > 4 * t2c
    # the sign flip itself: slower at small node counts, faster at 44
    assert rows[0][4] > rows[0][3]   # 4 nodes: cyclic worse for flat
    assert rows[-1][4] < rows[-1][3]  # 44 nodes: cyclic better for flat
    print()
