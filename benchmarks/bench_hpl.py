"""E5 — Figure 1: HPL GFLOP/s across the paper's five configurations.

Regenerates the figure's series at its exact x-axis points
(4(4), 16(16), 16(2), 64(8), 256(32)) with all five systems.  Shape
criteria from the paper's §V-B:

* UHCAF 2level leads everywhere, reaching the ~95 GFLOP/s band at
  256(32) (paper: 95);
* the 2level-over-1level improvement peaks in the ~32% band (paper:
  "up to 32%");
* CAF 2.0 with the OpenUH backend lands *between* UHCAF 2level and
  UHCAF 1level at 256 cores (paper: 80 vs 95 and ~72);
* the GFortran backend collapses to the ~30 GFLOP/s band (paper:
  29.48).

This is the heaviest benchmark (~1–2 minutes): a full N=6144
factorization is simulated 25 times.
"""

import pytest
from conftest import emit

from repro.bench import figure1


@pytest.mark.slow
def test_figure1(once):
    table = once(lambda: figure1())
    two = table.get("UHCAF 2level")
    one = table.get("UHCAF 1level")
    gains = "  ".join(
        f"{lbl}:{two.values[lbl] / one.values[lbl]:5.2f}x"
        for lbl in table.labels
    )
    emit(table, f"2level improvement over 1level (GFLOP/s ratio):  {gains}")

    caf_uh = table.get("CAF2.0 OpenUH backend")
    caf_gf = table.get("CAF2.0 GFortran backend")
    mpi = table.get("Open MPI (No tuning)")

    for label in table.labels:
        # 2level leads every configuration (values are GFLOP/s: higher wins)
        for other in (one, caf_uh, caf_gf, mpi):
            assert two.values[label] >= other.values[label] * 0.999, (
                f"UHCAF 2level lost to {other.name} at {label}"
            )
        # the GFortran backend is far below every OpenUH-backed stack
        assert caf_gf.values[label] < 0.5 * two.values[label]

    big = "256(32)"
    assert 80 <= two.values[big] <= 110, (
        f"2level at 256 cores: {two.values[big]:.1f} GF, paper band ~95"
    )
    improvement = two.values[big] / one.values[big]
    assert 1.2 <= improvement <= 1.45, (
        f"2level/1level {improvement:.2f} at 256 cores, paper band ~1.32"
    )
    assert 20 <= caf_gf.values[big] <= 40, "GFortran band ~29.48"
    # paper ordering at 256 cores: 2level > CAF2.0-OpenUH > 1level
    assert two.values[big] > caf_uh.values[big] > one.values[big]
