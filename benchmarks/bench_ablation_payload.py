"""E12 — the reduction strategy map across payload sizes.

The paper's two-level reduction is a *latency* optimization; MPI
practice adds a *bandwidth* algorithm (Rabenseifner's reduce-scatter +
allgather, total traffic 2·(n−1)/n·size vs recursive doubling's
log₂(n)·size) above a size threshold.  This ablation sweeps the payload
at 128 images / 16 nodes and locates both boundaries:

* tiny payloads — two-level wins (fewest latency-priced rounds over the
  wire, everything else on coherence fabric);
* large payloads — Rabenseifner overtakes recursive doubling (the
  textbook crossover), and eventually the latency-oriented two-level
  algorithm too;

completing the strategy map a production runtime would dispatch on —
size *and* hierarchy, not either alone.
"""

import numpy as np

from repro.bench.tables import ResultTable, Series
from conftest import emit

from repro.bench import reduce_benchmark
from repro.runtime.config import UHCAF_2LEVEL

IMAGES, IPN = 128, 8
SIZES = [1, 64, 1024, 16384, 131072]  # elements (8 B … 1 MiB)

STRATEGIES = {
    "two-level": UHCAF_2LEVEL,
    "recursive-doubling": UHCAF_2LEVEL.with_(reduce="recursive-doubling"),
    "rabenseifner": UHCAF_2LEVEL.with_(reduce="rabenseifner"),
}


def test_reduction_strategy_map(once):
    def run():
        out = {}
        for name, cfg in STRATEGIES.items():
            out[name] = {
                ne: reduce_benchmark(IMAGES, IPN, cfg, nelems=ne,
                                     iters=4).seconds_per_op
                for ne in SIZES
            }
        return out

    results = once(run)
    labels = [f"{ne * 8 // 1024}KiB" if ne >= 128 else f"{ne * 8}B"
              for ne in SIZES]
    table = ResultTable(
        "E12: allreduce latency vs payload, 128 images on 16 nodes",
        labels=labels, unit="us",
    )
    for name, per_size in results.items():
        series = Series(name)
        for ne, label in zip(SIZES, labels):
            series.add(label, per_size[ne] * 1e6)
        table.add_series(series)
    emit(table)

    two = results["two-level"]
    rd = results["recursive-doubling"]
    rab = results["rabenseifner"]
    # latency regime: two-level wins at one element
    assert two[1] < rd[1] and two[1] < rab[1]
    # bandwidth regime: rabenseifner beats recursive doubling at 1 MiB
    assert rab[131072] < rd[131072]
    # and the crossover vs two-level exists within the sweep
    assert rab[131072] < two[131072]
    # monotone costs in payload for every strategy
    for per_size in results.values():
        costs = [per_size[ne] for ne in SIZES]
        assert costs == sorted(costs)
