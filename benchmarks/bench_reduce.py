"""E3 — all-to-all reduction: the paper's "up to 74-fold" improvement.

Compares the two-level ``co_sum`` against the original UHCAF default
(the centralized AM-based reduction) and the flat binomial alternative,
over the 8-images-per-node sweep and across payload sizes.  The
headline factor is measured at one-element payloads on the full 44-node
cluster, where root-side serialization is most punishing — exactly the
regime §VII's "74-fold" refers to.
"""

from conftest import emit

from repro.bench import reduce_benchmark, sweep
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

IPN = 8
SWEEP = [(n * IPN, n) for n in (2, 8, 16, 32, 44)]
BINOMIAL_FLAT = UHCAF_1LEVEL.with_(name="uhcaf-binomial", reduce="binomial-flat")


def _latency(config, nelems):
    def fn(images, nodes):
        return reduce_benchmark(
            images, images_per_node=IPN, config=config, nelems=nelems
        ).seconds_per_op

    return fn


def test_reduction_latency_small_payload(once):
    def run():
        return sweep(
            "E3: co_sum latency, 1 element, 8 images per node",
            configs=SWEEP,
            systems=[
                ("two-level reduction (UHCAF 2level)", _latency(UHCAF_2LEVEL, 1)),
                ("default UHCAF reduction (centralized)", _latency(UHCAF_1LEVEL, 1)),
                ("flat binomial reduction", _latency(BINOMIAL_FLAT, 1)),
            ],
        )

    table = once(run)
    two = table.get("two-level reduction (UHCAF 2level)")
    default = table.get("default UHCAF reduction (centralized)")
    emit(table, table.speedup_row("two-level reduction (UHCAF 2level)",
                                  "default UHCAF reduction (centralized)"))

    ratios = two.ratio_to(default)
    peak = max(ratios.values())
    # Paper §VII: up to 74-fold; accept the 50–100× band.
    assert 50 <= peak <= 100, f"peak reduction speedup {peak:.1f}x off-band"
    # The factor grows with scale (serialization at the root worsens).
    labels = table.labels
    assert ratios[labels[-1]] > ratios[labels[0]]


def test_reduction_payload_sweep(once):
    """Fixed 44-node cluster, growing payloads: the improvement narrows
    as bandwidth terms take over but never inverts."""

    def run():
        return sweep(
            "E3b: co_sum latency vs payload, 352 images on 44 nodes",
            configs=[(352, 44)] ,
            systems=[
                (f"two-level, {ne} elems", _latency(UHCAF_2LEVEL, ne))
                for ne in (1, 64, 1024, 8192)
            ] + [
                (f"default, {ne} elems", _latency(UHCAF_1LEVEL, ne))
                for ne in (1, 64, 1024, 8192)
            ],
        )

    table = once(run)
    emit(table)
    label = table.labels[0]
    prev_ratio = float("inf")
    for ne in (1, 64, 1024, 8192):
        two = table.get(f"two-level, {ne} elems").values[label]
        flat = table.get(f"default, {ne} elems").values[label]
        ratio = flat / two
        assert ratio > 1, f"two-level lost at {ne} elems"
        assert ratio <= prev_ratio * 1.05, "improvement should narrow with size"
        prev_ratio = ratio
