"""E6 — notification-count accounting behind §IV-A's analysis.

The paper's methodology section argues from message counts:
dissemination needs n·log n notifications where a centralized linear
barrier needs 2(n−1), and what matters is *where* they land — serialized
through one shared-memory system, or spread across NICs.  This bench
regenerates those counts from the simulator's traffic meters, checks
them against the closed forms, and shows the placement split that
motivates TDLB (inter-node messages per barrier: Θ(n·log n) for flat
dissemination vs nodes·⌈log₂ nodes⌉ for TDLB).
"""

import math

from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL
from repro.runtime.program import run_spmd


def one_barrier_traffic(images, ipn, config):
    def main(ctx):
        yield from ctx.sync_all()

    nodes = max(-(-images // ipn), 1)
    result = run_spmd(main, num_images=images, images_per_node=ipn,
                      spec=paper_cluster(nodes), config=config)
    return result.traffic


def test_notification_counts(once):
    ipn = 8

    def run():
        rows = []
        for images in (16, 32, 64, 176, 352):
            nodes = images // ipn
            diss = one_barrier_traffic(images, ipn, UHCAF_1LEVEL)
            linear = one_barrier_traffic(
                images, ipn, UHCAF_1LEVEL.with_(barrier="linear"))
            tdlb = one_barrier_traffic(images, ipn, UHCAF_2LEVEL)
            rows.append((images, nodes, diss, linear, tdlb))
        return rows

    rows = once(run)
    print()
    print("E6: notifications per barrier (8 images/node)")
    print(f"{'config':>10} {'diss total':>11} {'diss inter':>11} "
          f"{'linear total':>13} {'tdlb total':>11} {'tdlb inter':>11}")
    for images, nodes, diss, linear, tdlb in rows:
        n = images
        # closed forms from §IV-A
        assert diss.total_messages == n * math.ceil(math.log2(n))
        assert linear.total_messages == 2 * (n - 1)
        expected_tdlb = (
            nodes * 2 * (ipn - 1) + nodes * math.ceil(math.log2(nodes))
        )
        assert tdlb.total_messages == expected_tdlb
        # TDLB moves asymptotically fewer messages over the wire
        assert tdlb.inter_messages == nodes * math.ceil(math.log2(nodes))
        assert tdlb.inter_messages < diss.inter_messages
        print(f"{images:>6}({nodes:<2}) {diss.total_messages:>11} "
              f"{diss.inter_messages:>11} {linear.total_messages:>13} "
              f"{tdlb.total_messages:>11} {tdlb.inter_messages:>11}")
    print()
