"""E9 — the cost of ``form team`` and what it buys (§III).

The paper's runtime computes the index-mapping array and the hierarchy
metadata once, at team formation, so collectives do zero topology work
per call.  This bench measures (a) formation cost versus team-count and
scale — it is a real collective exchange, growing with the parent team —
and (b) the amortization: after forming row teams, per-barrier latency
on a team is *cheaper* than on the initial team, so a handful of
barriers already pays the formation back.
"""

from repro.machine import paper_cluster
from repro.runtime.config import UHCAF_2LEVEL
from repro.runtime.program import run_spmd


def formation_cost(images, ipn, num_teams):
    """Seconds to execute one form_team splitting into ``num_teams``."""

    def main(ctx):
        t0 = ctx.now
        yield from ctx.form_team((ctx.this_image() - 1) % num_teams + 1)
        return ctx.now - t0

    nodes = max(-(-images // ipn), 1)
    result = run_spmd(main, num_images=images, images_per_node=ipn,
                      spec=paper_cluster(nodes), config=UHCAF_2LEVEL)
    return max(result.results)


def team_barrier_cost(images, ipn, num_teams, iters=8):
    """(formation seconds, per-barrier seconds on the formed team).

    Teams are *contiguous* blocks of images (the paper's loosely-coupled
    subproblem decomposition), so each subteam occupies a node-aligned
    slice of the cluster — strided teams would instead overlap on every
    node and contend for each node's conduit engine.
    """
    per_team = images // num_teams

    def main(ctx):
        t0 = ctx.now
        team = yield from ctx.form_team((ctx.this_image() - 1) // per_team + 1)
        yield from ctx.change_team(team)
        t_formed = ctx.now
        yield from ctx.sync_all()
        t1 = ctx.now
        for _ in range(iters):
            yield from ctx.sync_all()
        per_barrier = (ctx.now - t1) / iters
        yield from ctx.end_team()
        return (t_formed - t0, per_barrier)

    nodes = max(-(-images // ipn), 1)
    result = run_spmd(main, num_images=images, images_per_node=ipn,
                      spec=paper_cluster(nodes), config=UHCAF_2LEVEL)
    return (max(r[0] for r in result.results),
            max(r[1] for r in result.results))


def test_formation_cost_scales_with_parent_team(once):
    def run():
        return {images: formation_cost(images, 8, 4)
                for images in (16, 64, 176, 352)}

    costs = once(run)
    print()
    print("E9a: form_team cost vs parent-team size (4 subteams)")
    for images, seconds in costs.items():
        print(f"  {images:4d} images: {seconds * 1e6:9.2f} us")
    sizes = sorted(costs)
    # collective exchange through index 1: cost grows with team size
    for a, b in zip(sizes, sizes[1:]):
        assert costs[b] > costs[a]


def test_formation_amortizes_quickly(once):
    def run():
        return team_barrier_cost(128, 8, num_teams=4)

    formation, per_barrier = once(run)
    # a full-team barrier for comparison
    def full(ctx):
        yield from ctx.sync_all()
        t0 = ctx.now
        for _ in range(8):
            yield from ctx.sync_all()
        return (ctx.now - t0) / 8

    full_result = run_spmd(full, num_images=128, images_per_node=8,
                           spec=paper_cluster(16), config=UHCAF_2LEVEL)
    full_barrier = max(full_result.results)
    saving = full_barrier - per_barrier
    breakeven = formation / saving if saving > 0 else float("inf")
    print()
    print(f"E9b: formation {formation * 1e6:.1f} us; subteam barrier "
          f"{per_barrier * 1e6:.2f} us vs full-team {full_barrier * 1e6:.2f} us; "
          f"break-even after {breakeven:.0f} barriers")
    # a subteam (quarter of the images, fewer nodes) barriers faster
    assert per_barrier < full_barrier
    # and formation pays for itself within a realistic number of calls
    assert breakeven < 200
