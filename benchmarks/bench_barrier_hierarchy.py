"""E2 — §V-A claim (2) + the headline "up to 26×": 8 images per node.

The full comparison set of the paper's barrier evaluation:

1. TDLB (UHCAF 2level) — the contribution;
2. GASNet RDMA dissemination / current UHCAF pure dissemination — the
   hierarchy-unaware baseline the 26× is measured against;
3. GASNet IB dissemination — the thin raw-verbs reference TDLB should
   be only *marginally* more expensive than;
4. CAF 2.0 — two-sync-array dissemination over its conduit;
5. MPI_Barrier — MVAPICH, default Open MPI, and Open MPI with the
   hierarchy-aware sm+hierarch modules.

Shape criteria asserted: peak TDLB speedup over pure dissemination
≥ 20× (paper: up to 26×); raw-IB dissemination within 2× either side of
TDLB at the largest config; Open MPI hierarch between TDLB and flat
GASNet; flat MPI ahead of flat GASNet (MPI's sm BTL is already
node-aware).
"""

from conftest import emit

from repro.bench import barrier_benchmark, mpi_barrier_benchmark, sweep
from repro.runtime.config import (
    CAF20_OPENUH,
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)

IPN = 8
SWEEP = [(n * IPN, n) for n in (2, 4, 8, 16, 32, 44)]


def _caf(config):
    def fn(images, nodes):
        return barrier_benchmark(
            images, images_per_node=IPN, config=config
        ).seconds_per_op

    return fn


def _mpi(tuning):
    def fn(images, nodes):
        return mpi_barrier_benchmark(
            images, images_per_node=IPN, tuning=tuning
        ).seconds_per_op

    return fn


def test_barrier_hierarchy_comparison(once):
    def run():
        return sweep(
            f"E2: barrier latency, {IPN} images per node",
            configs=SWEEP,
            systems=[
                ("TDLB (UHCAF 2level)", _caf(UHCAF_2LEVEL)),
                ("UHCAF pure dissemination (GASNet RDMA)", _caf(UHCAF_1LEVEL)),
                ("GASNet IB dissemination", _caf(GASNET_IB_DISSEMINATION)),
                ("CAF 2.0", _caf(CAF20_OPENUH)),
                ("MPI_Barrier MVAPICH", _mpi("mvapich")),
                ("MPI_Barrier Open MPI", _mpi("openmpi")),
                ("MPI_Barrier Open MPI hierarch+sm", _mpi("openmpi-hierarch")),
            ],
        )

    table = once(run)
    tdlb = table.get("TDLB (UHCAF 2level)")
    pure = table.get("UHCAF pure dissemination (GASNet RDMA)")
    verbs = table.get("GASNet IB dissemination")
    hier_mpi = table.get("MPI_Barrier Open MPI hierarch+sm")
    emit(
        table,
        table.speedup_row("TDLB (UHCAF 2level)",
                          "UHCAF pure dissemination (GASNet RDMA)"),
    )

    ratios = tdlb.ratio_to(pure)
    peak = max(ratios.values())
    assert peak >= 20, f"peak TDLB speedup {peak:.1f}x below the paper's band"

    last = table.labels[-1]
    # "only marginally more expensive than the low-level dissemination
    # algorithm implemented directly over the IB verbs"
    assert tdlb.values[last] <= 2 * verbs.values[last]
    assert verbs.values[last] <= 1.5 * tdlb.values[last]
    # hierarchy-aware MPI lands near TDLB, far from flat GASNet
    assert hier_mpi.values[last] < pure.values[last] / 3
    # every flat MPI variant beats the flat GASNet stack at scale
    for name in ("MPI_Barrier MVAPICH", "MPI_Barrier Open MPI"):
        assert table.get(name).values[last] < pure.values[last]
