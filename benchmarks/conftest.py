"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one of the paper's reported
results (see DESIGN.md §4 for the experiment index).  The pattern:

* the *simulated* latencies/GFLOP/s are the reproduction's result —
  printed as a paper-style table and shape-checked with assertions, so a
  calibration regression fails the suite loudly;
* ``benchmark.pedantic`` wraps the simulation run so pytest-benchmark
  also reports the harness's wall-clock cost (useful for tracking the
  simulator's own performance).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


def emit(table, *extra_lines):
    """Print a result table (and summary lines) so ``-s`` runs show the
    paper-style output."""
    print()
    print(table.render())
    for line in extra_lines:
        print(line)
    print()


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark
    (simulations are deterministic — repeated rounds add nothing)."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
