"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one of the paper's reported
results (see DESIGN.md §4 for the experiment index).  The pattern:

* the *simulated* latencies/GFLOP/s are the reproduction's result —
  printed as a paper-style table and shape-checked with assertions, so a
  calibration regression fails the suite loudly;
* ``benchmark.pedantic`` wraps the simulation run so pytest-benchmark
  also reports the harness's wall-clock cost (useful for tracking the
  simulator's own performance).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.

The sweep cells inside each module are independent simulations routed
through :func:`repro.exec.run_tasks`, so ``REPRO_JOBS=auto pytest
benchmarks/ ...`` fans them across worker processes (tables unchanged;
see docs/parallel.md).
"""

from __future__ import annotations

import pytest

#: The OS-noise seed every benchmark table is generated with.  Pinned
#: here — rather than relying on ``run_spmd``'s default — so regenerated
#: tables are comparable across runs and the suite cannot silently drift
#: if the default ever changes.
BENCH_JITTER_SEED = 0


@pytest.fixture(autouse=True)
def explicit_seed(request, monkeypatch):
    """Pin the seeded knobs of every ``run_spmd`` call a bench module
    makes: ``jitter_seed`` defaults to :data:`BENCH_JITTER_SEED` and
    schedule fuzzing (``tiebreak_seed``) stays off, unless the benchmark
    passes its own values explicitly."""
    module = request.module
    original = getattr(module, "run_spmd", None)
    if original is None:
        return BENCH_JITTER_SEED

    def seeded(*args, **kwargs):
        kwargs.setdefault("jitter_seed", BENCH_JITTER_SEED)
        kwargs.setdefault("tiebreak_seed", None)
        return original(*args, **kwargs)

    monkeypatch.setattr(module, "run_spmd", seeded)
    return BENCH_JITTER_SEED


def emit(table, *extra_lines):
    """Print a result table (and summary lines) so ``-s`` runs show the
    paper-style output."""
    print()
    print(table.render())
    for line in extra_lines:
        print(line)
    print()


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark
    (simulations are deterministic — repeated rounds add nothing)."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
