"""E4 — one-to-all broadcast: the paper's "up to 3-fold" improvement.

Two-level ``co_broadcast`` versus the flat binomial default, on the
8-images-per-node sweep.  The broadcast baseline is already a tree (not
the centralized reduction baseline), so its deficit is only the
conduit-loopback cost of its intranode edges — hence the paper's modest
3× rather than the reduction's 74×.  Asserted band at the paper-scale
configurations (≥16 nodes): 1.5–5×.
"""

from conftest import emit

from repro.bench import broadcast_benchmark, sweep
from repro.runtime.config import UHCAF_1LEVEL, UHCAF_2LEVEL

IPN = 8
SWEEP = [(n * IPN, n) for n in (16, 32, 44)]


def _latency(config, nelems):
    def fn(images, nodes):
        return broadcast_benchmark(
            images, images_per_node=IPN, config=config, nelems=nelems
        ).seconds_per_op

    return fn


def test_broadcast_latency(once):
    def run():
        return sweep(
            "E4: co_broadcast latency, 8 images per node",
            configs=SWEEP,
            systems=[
                ("two-level broadcast (UHCAF 2level)", _latency(UHCAF_2LEVEL, 1)),
                ("flat binomial broadcast (default)", _latency(UHCAF_1LEVEL, 1)),
            ],
        )

    table = once(run)
    two = table.get("two-level broadcast (UHCAF 2level)")
    flat = table.get("flat binomial broadcast (default)")
    emit(table, table.speedup_row("two-level broadcast (UHCAF 2level)",
                                  "flat binomial broadcast (default)"))
    ratios = two.ratio_to(flat)
    for label, ratio in ratios.items():
        assert 1.5 <= ratio <= 6.0, (
            f"broadcast improvement {ratio:.1f}x at {label} outside band"
        )
    # at the paper's full 44-node scale the factor sits in the ~3x band
    assert ratios[table.labels[-1]] <= 4.5
    # and narrows as node count grows (bandwidth terms take over)
    ordered = [ratios[lbl] for lbl in table.labels]
    assert ordered == sorted(ordered, reverse=True)


def test_broadcast_message_sizes(once):
    """At 44 nodes, larger payloads shrink the factor toward a
    bandwidth-bound crossover: latency-class messages win ~3–4×, while by
    ~32 KiB the wire/memcpy terms dominate both algorithms equally and
    the two-level advantage evaporates (≈1×) — the broadcast improvement
    is a *small-message* phenomenon, consistent with it being the
    paper's most modest headline (3× vs the reduction's 74×)."""

    def run():
        rows = []
        for ne in (1, 128, 4096):
            t2 = _latency(UHCAF_2LEVEL, ne)(352, 44)
            t1 = _latency(UHCAF_1LEVEL, ne)(352, 44)
            rows.append((ne, t2 * 1e6, t1 * 1e6, t1 / t2))
        return rows

    rows = once(run)
    print()
    print("E4b: co_broadcast vs payload, 352 images on 44 nodes")
    print(f"{'elems':>8} {'two-level us':>14} {'flat us':>12} {'ratio':>7}")
    ratios = []
    for ne, t2, t1, ratio in rows:
        print(f"{ne:8d} {t2:14.2f} {t1:12.2f} {ratio:6.2f}x")
        ratios.append(ratio)
    # small messages: clear two-level win; monotone narrowing; crossover
    # to parity (within 10%) by the largest payload
    assert ratios[0] > 2.5
    assert ratios == sorted(ratios, reverse=True)
    assert 0.9 <= ratios[-1] <= 1.25
