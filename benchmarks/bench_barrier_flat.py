"""E1 — §V-A claim (1): flat hierarchy (one image per node).

With every image alone on its node there is no intranode set to
exploit, and TDLB must degenerate to the plain dissemination barrier:
the paper reports it "performs as well as a pure dissemination
algorithm in the case of a flat hierarchy".  This bench sweeps node
counts at 1 image/node and checks exact parity.
"""

from conftest import emit

from repro.bench import barrier_benchmark, sweep
from repro.runtime.config import (
    GASNET_IB_DISSEMINATION,
    UHCAF_1LEVEL,
    UHCAF_2LEVEL,
)

SWEEP = [(n, n) for n in (2, 4, 8, 16, 32, 44)]


def _latency(config):
    def fn(images, nodes):
        return barrier_benchmark(
            images, images_per_node=1, config=config
        ).seconds_per_op

    return fn


def test_flat_hierarchy_parity(once):
    def run():
        return sweep(
            "E1: barrier latency, 1 image per node (flat hierarchy)",
            configs=SWEEP,
            systems=[
                ("TDLB (UHCAF 2level)", _latency(UHCAF_2LEVEL)),
                ("pure dissemination (UHCAF 1level)", _latency(UHCAF_1LEVEL)),
                ("dissemination over raw IB verbs", _latency(GASNET_IB_DISSEMINATION)),
            ],
        )

    table = once(run)
    tdlb = table.get("TDLB (UHCAF 2level)")
    diss = table.get("pure dissemination (UHCAF 1level)")
    emit(table, table.speedup_row("TDLB (UHCAF 2level)",
                                  "pure dissemination (UHCAF 1level)"))
    # Shape criterion: exact degeneration — TDLB == dissemination at
    # every flat configuration (same algorithm after leader election).
    for label in table.labels:
        assert tdlb.values[label] == diss.values[label], (
            f"TDLB failed to degenerate to dissemination at {label}"
        )
